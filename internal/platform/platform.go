// Package platform assembles implemented systems: the generated code
// CODE(M) integrated with the simulated RTOS and hardware board under one
// of the paper's three implementation schemes (§IV).
//
// A System owns the whole vertical stack — simulation kernel, RTOS,
// environment, board, executor — plus the four-variable trace probes the
// testing layers read. Instrumentation is layered exactly as the paper
// prescribes: the R level records only m- and c-events at the
// hardware/environment boundary; the M level additionally records i- and
// o-events at the CODE(M) boundary and per-transition delays inside the
// generated step function. Probes cost nothing in virtual time, so the
// two levels observe identical executions.
package platform

import (
	"fmt"
	"time"

	"rmtest/internal/campaign"
	"rmtest/internal/codegen"
	"rmtest/internal/env"
	"rmtest/internal/fourvar"
	"rmtest/internal/hw"
	"rmtest/internal/rtos"
	"rmtest/internal/sim"
	"rmtest/internal/statechart"
)

// Instrument selects the probe layer.
type Instrument int

// Instrumentation levels.
const (
	// RLevel probes only the environment boundary (m- and c-events):
	// everything R-testing needs.
	RLevel Instrument = iota
	// MLevel additionally probes the CODE(M) boundary (i- and o-events)
	// and transition execution, enabling delay-segment measurement.
	MLevel
)

func (i Instrument) String() string {
	if i == RLevel {
		return "R"
	}
	return "M"
}

// InputBinding routes one sensor to the chart: a rising edge on the
// sensor's latched value fires Event (if set); the latched level is
// copied into Var (if set). At least one of Event/Var must be set.
type InputBinding struct {
	Sensor string
	Event  string
	Var    string
}

// OutputBinding routes one chart output variable to an actuator.
type OutputBinding struct {
	Var      string
	Actuator string
}

// Config describes the implemented system independent of the scheme.
type Config struct {
	Chart   *statechart.Chart
	Cost    codegen.CostModel
	RTOS    rtos.Config
	Board   hw.BoardConfig
	Inputs  []InputBinding
	Outputs []OutputBinding
}

// System is one assembled implemented system.
type System struct {
	Kernel *sim.Kernel
	Sched  *rtos.Scheduler
	Env    *env.Environment
	Board  *hw.Board
	Exec   *codegen.Exec

	Trace      *fourvar.Trace
	TransTrace *fourvar.TransitionTrace

	cfg     Config
	scheme  Scheme
	level   Instrument
	prog    *codegen.Program
	taskEnv *taskEnv
	mapping fourvar.Mapping

	inputsDropped  uint64
	outputsDropped uint64
	chartTicks     int64 // E_CLK ticks executed so far (elapsed-time catch-up)

	// rewindHooks capture and restore scheme-private mutable state (the
	// input edge-detection maps) across System.Snapshot/Restore.
	rewindHooks []rewindHook
}

// Scheme integrates CODE(M) with the platform by spawning RTOS tasks.
type Scheme interface {
	// Name identifies the scheme in reports ("scheme1", ...).
	Name() string
	// Start spawns the scheme's tasks on the assembled system.
	Start(sys *System)
}

// taskEnv adapts the CODE(M)-executing rtos.Task to codegen.ExecEnv, so
// generated-code cost charges CPU time on whichever task runs the step
// function.
type taskEnv struct {
	tk *rtos.Task
	k  *sim.Kernel
}

func (te *taskEnv) Compute(d time.Duration) {
	if te.tk == nil {
		panic("platform: CODE(M) executed outside its task")
	}
	te.tk.Compute(d)
}

func (te *taskEnv) Now() time.Duration { return te.k.Now() }

// listener records transition delays and o-events at the M level.
type listener struct {
	sys *System
}

func (l listener) TransitionStart(id int, label string, at time.Duration) {
	l.sys.TransTrace.Start(id, label, at)
}

func (l listener) TransitionFinish(id int, label string, at time.Duration, changed []statechart.VarChange) {
	outs := make([]string, len(changed))
	for i, ch := range changed {
		outs[i] = ch.Name
	}
	l.sys.TransTrace.Finish(id, label, at, outs)
	// o-events: the instant CODE(M) wrote each output.
	for _, ch := range changed {
		l.sys.Trace.Record(fourvar.Output, ch.Name, ch.To, at)
	}
}

// Prebuilt holds the run-independent artifacts of a Config: the
// compiled chart's generated program and the validated four-variable
// mapping. Compilation and binding validation run once in Precompile;
// every NewSystem call then only assembles run state. The Program is
// immutable (all execution state lives in codegen.Exec), so a single
// Prebuilt is safely shared by concurrent campaign workers.
type Prebuilt struct {
	cfg     Config
	prog    *codegen.Program
	mapping fourvar.Mapping
	fp      uint64
}

// Precompile compiles the chart, generates CODE(M), and validates the
// input/output bindings against the program and board configuration.
func Precompile(cfg Config) (*Prebuilt, error) {
	if cfg.Chart == nil {
		return nil, fmt.Errorf("platform: Config.Chart is required")
	}
	if len(cfg.Inputs) == 0 || len(cfg.Outputs) == 0 {
		return nil, fmt.Errorf("platform: at least one input and one output binding required")
	}
	cc, err := cfg.Chart.Compile()
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Generate(cc)
	if err != nil {
		return nil, err
	}
	// Validate bindings against board configuration and program.
	sensorSignal := make(map[string]string)
	for _, sc := range cfg.Board.Sensors {
		sensorSignal[sc.Name] = sc.Signal
	}
	actuatorSignal := make(map[string]string)
	for _, ac := range cfg.Board.Actuators {
		actuatorSignal[ac.Name] = ac.Signal
	}
	mapping := fourvar.Mapping{MtoI: map[string]string{}, OtoC: map[string]string{}}
	for _, ib := range cfg.Inputs {
		sig, ok := sensorSignal[ib.Sensor]
		if !ok {
			return nil, fmt.Errorf("platform: input binding references unknown sensor %q", ib.Sensor)
		}
		if ib.Event == "" && ib.Var == "" {
			return nil, fmt.Errorf("platform: input binding for %q routes to neither event nor variable", ib.Sensor)
		}
		if ib.Event != "" {
			if _, ok := prog.EventID(ib.Event); !ok {
				return nil, fmt.Errorf("platform: input binding references unknown event %q", ib.Event)
			}
			mapping.MtoI[sig] = ib.Event
		}
		if ib.Var != "" {
			if _, ok := prog.VarID(ib.Var); !ok {
				return nil, fmt.Errorf("platform: input binding references unknown variable %q", ib.Var)
			}
			if ib.Event == "" {
				mapping.MtoI[sig] = ib.Var
			}
		}
	}
	for _, ob := range cfg.Outputs {
		sig, ok := actuatorSignal[ob.Actuator]
		if !ok {
			return nil, fmt.Errorf("platform: output binding references unknown actuator %q", ob.Actuator)
		}
		if _, ok := prog.VarID(ob.Var); !ok {
			return nil, fmt.Errorf("platform: output binding references unknown variable %q", ob.Var)
		}
		mapping.OtoC[ob.Var] = sig
	}
	if err := mapping.Validate(); err != nil {
		return nil, err
	}
	pb := &Prebuilt{cfg: cfg, prog: prog, mapping: mapping}
	pb.fp = pb.fingerprint()
	return pb, nil
}

// fingerprint hashes everything run-independent that shapes a simulation
// result: the full generated program (the disassembly is a deterministic,
// lossless rendering of tables and bytecode), the cost model, the RTOS
// and board configurations and the I/O bindings. Two Prebuilts with equal
// fingerprints drive byte-identical systems for equal stimuli.
func (pb *Prebuilt) fingerprint() uint64 {
	h := campaign.NewHasher()
	h.String(pb.prog.Disassemble())
	h.Int64(int64(pb.prog.TickPeriod))
	h.String(fmt.Sprintf("%+v", pb.cfg.Cost))
	h.String(fmt.Sprintf("%+v", pb.cfg.RTOS))
	h.String(fmt.Sprintf("%+v", pb.cfg.Board))
	h.String(fmt.Sprintf("%+v", pb.cfg.Inputs))
	h.String(fmt.Sprintf("%+v", pb.cfg.Outputs))
	return h.Sum()
}

// Fingerprint returns the Prebuilt's content hash — the system-side input
// to the campaign evaluation cache's candidate fingerprints.
func (pb *Prebuilt) Fingerprint() uint64 { return pb.fp }

// Config returns the configuration the Prebuilt was compiled from.
func (pb *Prebuilt) Config() Config { return pb.cfg }

// Program returns the compiled program. It is immutable; callers (the
// test-case generators' model-guided probe planning) must not mutate it.
func (pb *Prebuilt) Program() *codegen.Program { return pb.prog }

// Mapping returns the validated four-variable mapping.
func (pb *Prebuilt) Mapping() fourvar.Mapping { return pb.mapping }

// Scratch pools the run-local machinery one campaign worker can safely
// reuse between sequential runs: the simulation kernel (event pool and
// queue capacity survive Reset) and the four-variable trace (event and
// stream-index capacity survive Reset). The zero value is ready to use;
// pass the same Scratch to successive NewSystem calls on one worker.
//
// The caller must Shutdown the previous System before building the next
// one from the same Scratch, and must not touch the previous System
// afterwards — its kernel and trace are recycled in place.
//
// The TransitionTrace is deliberately NOT pooled: M-level results retain
// it (coverage analysis reads it after the campaign), so recycling it
// would clobber data the caller still owns.
type Scratch struct {
	kernel *sim.Kernel
	trace  *fourvar.Trace
}

// take returns the pooled kernel and trace, reset for a fresh run, and
// lazily allocates them on first use. Taps are cleared: run-scoped
// observers (the online monitor) must not survive into the next run.
func (sc *Scratch) take() (*sim.Kernel, *fourvar.Trace) {
	if sc.kernel == nil {
		sc.kernel = sim.New()
		sc.trace = fourvar.NewTrace()
	} else {
		sc.kernel.Reset()
		sc.trace.Reset()
		sc.trace.ClearTaps()
	}
	return sc.kernel, sc.trace
}

// NewSystem assembles a fresh implemented system for one simulation run.
// It recompiles the chart every call; campaigns should Precompile once
// and use Prebuilt.NewSystem per run instead.
func NewSystem(cfg Config, scheme Scheme, level Instrument) (*System, error) {
	if scheme == nil {
		return nil, fmt.Errorf("platform: scheme is required")
	}
	pb, err := Precompile(cfg)
	if err != nil {
		return nil, err
	}
	return pb.NewSystem(scheme, level, nil)
}

// NewSystem assembles one implemented system from the precompiled
// program. scratch may be nil (everything is freshly allocated) or a
// per-worker Scratch whose kernel and trace are recycled into the new
// system. The scheduler, environment, board and executor are always
// rebuilt — they are cheap, and the RTOS owns goroutine lifecycle state
// that must not leak between runs.
func (pb *Prebuilt) NewSystem(scheme Scheme, level Instrument, scratch *Scratch) (*System, error) {
	if scheme == nil {
		return nil, fmt.Errorf("platform: scheme is required")
	}
	var k *sim.Kernel
	var tr *fourvar.Trace
	if scratch != nil {
		k, tr = scratch.take()
	} else {
		k, tr = sim.New(), fourvar.NewTrace()
	}
	cfg := pb.cfg
	sys := &System{
		Kernel:     k,
		Sched:      rtos.New(k, cfg.RTOS),
		Env:        env.New(k),
		Trace:      tr,
		TransTrace: fourvar.NewTransitionTrace(),
		cfg:        cfg,
		scheme:     scheme,
		level:      level,
		prog:       pb.prog,
		taskEnv:    &taskEnv{k: k},
		mapping:    pb.mapping,
	}
	var err error
	sys.Board, err = hw.NewBoard(sys.Env, cfg.Board)
	if err != nil {
		return nil, err
	}

	var lst codegen.Listener
	if level == MLevel {
		lst = listener{sys: sys}
	}
	sys.Exec = codegen.NewExec(pb.prog, cfg.Cost, sys.taskEnv, lst)

	// Boundary probes: every monitored and controlled signal change is an
	// m-/c-event.
	for m := range pb.mapping.MtoI {
		sys.Env.Watch(m, func(name string, _, now int64, at sim.Time) {
			sys.Trace.Record(fourvar.Monitored, name, now, at)
		})
	}
	for _, c := range pb.mapping.OtoC {
		sys.Env.Watch(c, func(name string, _, now int64, at sim.Time) {
			sys.Trace.Record(fourvar.Controlled, name, now, at)
		})
	}
	scheme.Start(sys)
	return sys, nil
}

// Mapping returns the four-variable mapping derived from the bindings.
func (sys *System) Mapping() fourvar.Mapping { return sys.mapping }

// SchemeName returns the active scheme's name.
func (sys *System) SchemeName() string { return sys.scheme.Name() }

// Level returns the instrumentation level.
func (sys *System) Level() Instrument { return sys.level }

// Program returns the generated program.
func (sys *System) Program() *codegen.Program { return sys.prog }

// InputsDropped counts chart input messages lost to full queues.
func (sys *System) InputsDropped() uint64 { return sys.inputsDropped }

// OutputsDropped counts output messages lost to full queues.
func (sys *System) OutputsDropped() uint64 { return sys.outputsDropped }

// Run advances the simulation to the given horizon.
func (sys *System) Run(until sim.Time) { sys.Kernel.Run(until) }

// Shutdown terminates all RTOS task goroutines; the system must not be
// used afterwards.
func (sys *System) Shutdown() { sys.Sched.Shutdown() }

// recordInput records an i-event: the instant CODE(M) read the input.
func (sys *System) recordInput(name string, v int64, at sim.Time) {
	if sys.level == MLevel {
		sys.Trace.Record(fourvar.Input, name, v, at)
	}
}

// primeInputBaseline initialises the edge-detection snapshot from the
// sensors' power-on latch values, as device-driver init code does. Without
// this, a stimulus arriving before the first sensing-task run would be
// treated as the baseline and silently swallowed.
func (sys *System) primeInputBaseline(lastVals map[string]int64) {
	for _, ib := range sys.cfg.Inputs {
		lastVals[ib.Sensor] = sys.Board.Sensor(ib.Sensor).Read()
	}
}

// inputScan reads every bound sensor and reports chart updates: the event
// mask to fire and variable updates to apply. lastVals carries edge state
// across invocations; CPU read costs are charged to tk.
func (sys *System) inputScan(tk *rtos.Task, lastVals map[string]int64) (mask uint64, updates []varUpdate) {
	for _, ib := range sys.cfg.Inputs {
		s := sys.Board.Sensor(ib.Sensor)
		if c := s.Config().ReadCost; c > 0 {
			tk.Compute(c)
		}
		v := s.Read()
		last, seen := lastVals[ib.Sensor]
		if seen && v == last {
			continue
		}
		lastVals[ib.Sensor] = v
		if !seen {
			// First scan establishes the baseline without firing edges.
			continue
		}
		if ib.Event != "" && last == 0 && v != 0 {
			id, _ := sys.prog.EventID(ib.Event)
			mask |= 1 << uint(id)
			updates = append(updates, varUpdate{name: ib.Event, value: 1, isEvent: true})
		}
		if ib.Var != "" {
			updates = append(updates, varUpdate{name: ib.Var, value: v})
		}
	}
	return mask, updates
}

type varUpdate struct {
	name    string
	value   int64
	isEvent bool
}

// applyInputs commits updates into the executor and records i-events at
// the commit instant (the moment CODE(M) reads them).
func (sys *System) applyInputs(tk *rtos.Task, updates []varUpdate) {
	for _, u := range updates {
		if !u.isEvent {
			sys.Exec.SetInput(u.name, u.value)
		}
		sys.recordInput(u.name, u.value, tk.Now())
	}
}

// stepChart advances the chart to the current platform time: it executes
// as many E_CLK ticks as have elapsed since the previous invocation
// (elapsed-time catch-up, as time-based generated code does), so model
// time tracks real time even when task releases are skipped under
// overload. Events fire on the first tick only (they were latched once);
// output changes across the batch are merged so the invocation commits
// each output's final value, the way generated C writes its output
// structure at the end of the step computation.
func (sys *System) stepChart(tk *rtos.Task, mask uint64) []statechart.VarChange {
	ticks := int64(1)
	if tp := sys.prog.TickPeriod; tp > 0 {
		target := int64(tk.Now() / tp)
		if n := target - sys.chartTicks; n > 1 {
			ticks = n
		}
	}
	sys.chartTicks += ticks
	first := make(map[string]int64)
	last := make(map[string]int64)
	var order []string
	absorb := func(changes []statechart.VarChange) {
		for _, ch := range changes {
			if _, seen := first[ch.Name]; !seen {
				first[ch.Name] = ch.From
				order = append(order, ch.Name)
			}
			last[ch.Name] = ch.To
		}
	}
	res := sys.Exec.Step(mask)
	absorb(res.Changed)
	for k := int64(1); k < ticks; k++ {
		res = sys.Exec.Step(0)
		absorb(res.Changed)
	}
	var out []statechart.VarChange
	for _, name := range order {
		if first[name] != last[name] {
			out = append(out, statechart.VarChange{Name: name, From: first[name], To: last[name]})
		}
	}
	return out
}

// writeOutputs pushes changed outputs to their actuators, charging write
// costs.
func (sys *System) writeOutputs(tk *rtos.Task, changed []statechart.VarChange) {
	for _, ch := range changed {
		for _, ob := range sys.cfg.Outputs {
			if ob.Var != ch.Name {
				continue
			}
			a := sys.Board.Actuator(ob.Actuator)
			if c := a.Config().WriteCost; c > 0 {
				tk.Compute(c)
			}
			a.Write(ch.To)
		}
	}
}
