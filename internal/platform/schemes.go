package platform

import (
	"time"

	"rmtest/internal/rtos"
	"rmtest/internal/sim"
)

// Scheme1 is the paper's single-threaded implementation: one periodic
// task reads the sensors, executes CODE(M) and writes the actuators at
// the end of the computation. The case study invokes it every 25 ms.
type Scheme1 struct {
	// Period is the task period (default 25 ms).
	Period sim.Time
	// Prio is the task priority (default 2).
	Prio int
	// Offset phases the first release.
	Offset sim.Time
}

// DefaultScheme1 returns the case-study configuration.
func DefaultScheme1() *Scheme1 {
	return &Scheme1{Period: 25 * time.Millisecond, Prio: 2}
}

// Name implements Scheme.
func (s *Scheme1) Name() string { return "scheme1" }

// Start implements Scheme.
func (s *Scheme1) Start(sys *System) {
	period := s.Period
	if period <= 0 {
		period = 25 * time.Millisecond
	}
	lastVals := make(map[string]int64)
	sys.primeInputBaseline(lastVals)
	registerEdgeState(sys, lastVals)
	sys.Sched.SpawnPeriodic("codeM", s.Prio, s.Offset, period, func(tk *rtos.Task) {
		sys.taskEnv.tk = tk
		mask, updates := sys.inputScan(tk, lastVals)
		sys.applyInputs(tk, updates)
		changed := sys.stepChart(tk, mask)
		sys.writeOutputs(tk, changed)
	})
}

// registerEdgeState exposes a scheme's input edge-detection map to the
// snapshot machinery: it lives in a task-body closure, so without this
// hook a restore could not rewind which sensor values the scan last saw.
func registerEdgeState(sys *System, lastVals map[string]int64) {
	sys.RegisterRewindState(
		func() any {
			c := make(map[string]int64, len(lastVals))
			for k, v := range lastVals {
				c[k] = v
			}
			return c
		},
		func(saved any) {
			clear(lastVals)
			for k, v := range saved.(map[string]int64) {
				lastVals[k] = v
			}
		},
	)
}

// inMsg carries one input update from the sensing task to the CODE(M)
// task over a FIFO queue.
type inMsg struct {
	update varUpdate
	mask   uint64
}

// outMsg carries one output change from the CODE(M) task to the actuation
// task over a FIFO queue.
type outMsg struct {
	name  string
	value int64
}

// Scheme2 is the paper's multi-threaded implementation: separate sensing
// and actuation tasks communicate with the CODE(M) task through FIFO
// queues, so sensors and actuators run at different frequencies from the
// CODE(M) execution. The case study chooses the periods so their sum
// along the sensing -> CODE(M) -> actuation path stays below the 100 ms
// requirement.
type Scheme2 struct {
	SensePeriod sim.Time // default 20 ms
	CodePeriod  sim.Time // default 40 ms
	ActPeriod   sim.Time // default 20 ms
	SensePrio   int      // default 3
	CodePrio    int      // default 2
	ActPrio     int      // default 3
	QueueCap    int      // default 8
}

// DefaultScheme2 returns the case-study configuration
// (20 + 40 + 20 = 80 ms < 100 ms).
func DefaultScheme2() *Scheme2 {
	return &Scheme2{
		SensePeriod: 20 * time.Millisecond,
		CodePeriod:  40 * time.Millisecond,
		ActPeriod:   20 * time.Millisecond,
		SensePrio:   3,
		CodePrio:    2,
		ActPrio:     3,
		QueueCap:    8,
	}
}

// Name implements Scheme.
func (s *Scheme2) Name() string { return "scheme2" }

// Start implements Scheme.
func (s *Scheme2) Start(sys *System) {
	s.start(sys)
}

// start spawns the three pipeline tasks; shared with Scheme3.
func (s *Scheme2) start(sys *System) {
	cap := s.QueueCap
	if cap <= 0 {
		cap = 8
	}
	inQ := sys.Sched.NewQueue("inQ", cap)
	outQ := sys.Sched.NewQueue("outQ", cap)

	lastVals := make(map[string]int64)
	sys.primeInputBaseline(lastVals)
	registerEdgeState(sys, lastVals)
	sys.Sched.SpawnPeriodic("sense", s.SensePrio, 0, s.SensePeriod, func(tk *rtos.Task) {
		_, updates := sys.inputScan(tk, lastVals)
		for _, u := range updates {
			m := uint64(0)
			if u.isEvent {
				id, _ := sys.prog.EventID(u.name)
				m = 1 << uint(id)
			}
			if !tk.TrySend(inQ, inMsg{update: u, mask: m}) {
				sys.inputsDropped++
			}
		}
	})

	sys.Sched.SpawnPeriodic("codeM", s.CodePrio, 0, s.CodePeriod, func(tk *rtos.Task) {
		sys.taskEnv.tk = tk
		var mask uint64
		var updates []varUpdate
		for {
			v, ok := tk.TryRecv(inQ)
			if !ok {
				break
			}
			msg := v.(inMsg)
			mask |= msg.mask
			updates = append(updates, msg.update)
		}
		sys.applyInputs(tk, updates)
		for _, ch := range sys.stepChart(tk, mask) {
			if !tk.TrySend(outQ, outMsg{name: ch.Name, value: ch.To}) {
				sys.outputsDropped++
			}
		}
	})

	sys.Sched.SpawnPeriodic("actuate", s.ActPrio, 0, s.ActPeriod, func(tk *rtos.Task) {
		for {
			v, ok := tk.TryRecv(outQ)
			if !ok {
				return
			}
			msg := v.(outMsg)
			for _, ob := range sys.cfg.Outputs {
				if ob.Var != msg.name {
					continue
				}
				a := sys.Board.Actuator(ob.Actuator)
				if c := a.Config().WriteCost; c > 0 {
					tk.Compute(c)
				}
				a.Write(msg.value)
			}
		}
	})
}

// InterferenceTask is one additional workload thread of Scheme3.
type InterferenceTask struct {
	Name   string
	Prio   int
	Offset sim.Time
	Period sim.Time
	Burst  sim.Time // CPU consumed per release
}

// Scheme3 is the paper's non-stand-alone implementation: Scheme2 plus
// additional threads (network drivers and similar) that do not
// communicate with CODE(M) but compete for the CPU. The case study runs
// three: one at the CODE(M) task's priority, one higher and one lower.
type Scheme3 struct {
	Scheme2
	Interference []InterferenceTask
}

// DefaultScheme3 returns the case-study configuration: the Scheme2
// pipeline plus three interference threads. The higher-priority thread's
// bursts are long enough to starve the pipeline past the 100 ms deadline
// — and occasionally past a whole button press, which produces the MAX
// (response never observed) entries of Table I.
func DefaultScheme3() *Scheme3 {
	return &Scheme3{
		Scheme2: *DefaultScheme2(),
		Interference: []InterferenceTask{
			{Name: "netdrv", Prio: 4, Period: 130 * time.Millisecond, Burst: 80 * time.Millisecond},
			{Name: "logger", Prio: 2, Period: 70 * time.Millisecond, Burst: 30 * time.Millisecond},
			{Name: "housekeeping", Prio: 1, Period: 40 * time.Millisecond, Burst: 12 * time.Millisecond},
		},
	}
}

// Name implements Scheme.
func (s *Scheme3) Name() string { return "scheme3" }

// Start implements Scheme.
func (s *Scheme3) Start(sys *System) {
	s.start(sys)
	for _, it := range s.Interference {
		burst := it.Burst
		sys.Sched.SpawnPeriodic(it.Name, it.Prio, it.Offset, it.Period, func(tk *rtos.Task) {
			tk.Compute(burst)
		})
	}
}
