package platform

import (
	"time"

	"rmtest/internal/schedlint"
	"rmtest/internal/sim"
)

// PipelineWCET carries the per-task worst-case execution times and
// queue traffic the static platform model needs but cannot derive from
// the scheme parameters alone: the WCETs come from the board's device
// costs plus the bytecode WCET analysis (lint.WCETReport), and the item
// counts from the chart's variable/output structure.
type PipelineWCET struct {
	// Sense, Code and Act are the WCETs of the three pipeline tasks.
	Sense sim.Time
	Code  sim.Time
	Act   sim.Time
	// SenseItems is the worst-case number of input updates the sensing
	// task enqueues per release (bounded by the number of bound sensors,
	// counting an event and a variable route separately).
	SenseItems int
	// CodeItems is the worst-case number of output changes the CODE(M)
	// task enqueues per release (bounded by the number of output
	// variables).
	CodeItems int
}

// StaticModel declares the Scheme2 pipeline as a schedlint platform
// configuration: the three periodic tasks with their priorities and
// periods, the two FIFO queues with the configured capacity, and the
// queue traffic between them. The pipeline uses non-blocking
// TrySend/TryRecv exclusively, so no task declares critical sections —
// the analysis should find zero blocking, and the simulator cross-check
// verifies it does.
func (s *Scheme2) StaticModel(w PipelineWCET) schedlint.Config {
	capacity := s.QueueCap
	if capacity <= 0 {
		capacity = 8
	}
	sense := s.SensePeriod
	if sense <= 0 {
		sense = 20 * time.Millisecond
	}
	code := s.CodePeriod
	if code <= 0 {
		code = 40 * time.Millisecond
	}
	act := s.ActPeriod
	if act <= 0 {
		act = 20 * time.Millisecond
	}
	return schedlint.Config{
		Tasks: []schedlint.TaskSpec{
			{
				Name: "sense", Prio: s.SensePrio, Period: sense, WCET: w.Sense,
				Sends: []schedlint.QueueUse{{Queue: "inQ", Items: w.SenseItems}},
			},
			{
				Name: "codeM", Prio: s.CodePrio, Period: code, WCET: w.Code,
				Recvs: []schedlint.QueueUse{{Queue: "inQ", DrainAll: true}},
				Sends: []schedlint.QueueUse{{Queue: "outQ", Items: w.CodeItems}},
			},
			{
				Name: "actuate", Prio: s.ActPrio, Period: act, WCET: w.Act,
				Recvs: []schedlint.QueueUse{{Queue: "outQ", DrainAll: true}},
			},
		},
		Queues: []schedlint.QueueSpec{
			{Name: "inQ", Capacity: capacity},
			{Name: "outQ", Capacity: capacity},
		},
	}
}

// StaticModel extends the Scheme2 pipeline model with the interference
// threads: pure CPU burners with no resource usage, which the analysis
// sees only as preemption (and, at equal priority, FIFO blocking).
func (s *Scheme3) StaticModel(w PipelineWCET) schedlint.Config {
	cfg := s.Scheme2.StaticModel(w)
	for _, it := range s.Interference {
		cfg.Tasks = append(cfg.Tasks, schedlint.TaskSpec{
			Name: it.Name, Prio: it.Prio, Period: it.Period, WCET: it.Burst,
		})
	}
	return cfg
}
