package platform

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rmtest/internal/codegen"
	"rmtest/internal/fourvar"
	"rmtest/internal/hw"
	"rmtest/internal/statechart"
)

const ms = time.Millisecond

// pumpConfig assembles the Fig. 2 chart on a minimal pump board.
func pumpConfig() Config {
	chart := &statechart.Chart{
		Name:       "pump",
		TickPeriod: time.Millisecond,
		Events:     []string{"i_BolusReq", "i_EmptyAlarm", "i_ClearAlarm"},
		Vars: []statechart.VarDecl{
			{Name: "o_MotorState", Type: statechart.Int, Kind: statechart.Output},
			{Name: "o_BuzzerState", Type: statechart.Bool, Kind: statechart.Output},
		},
		Initial: "Idle",
		States: []*statechart.State{
			{Name: "Idle", Transitions: []statechart.Transition{
				{To: "BolusRequested", Trigger: "i_BolusReq"},
				{To: "EmptyAlarm", Trigger: "i_EmptyAlarm", Action: "o_MotorState := 0; o_BuzzerState := 1"},
			}},
			{Name: "BolusRequested", Transitions: []statechart.Transition{
				{To: "Infusion", Trigger: "before(100, E_CLK)", Action: "o_MotorState := 1"},
			}},
			{Name: "Infusion", Transitions: []statechart.Transition{
				{To: "Idle", Trigger: "at(4000, E_CLK)", Action: "o_MotorState := 0"},
				{To: "EmptyAlarm", Trigger: "i_EmptyAlarm", Action: "o_MotorState := 0; o_BuzzerState := 1"},
			}},
			{Name: "EmptyAlarm", Transitions: []statechart.Transition{
				{To: "Idle", Trigger: "i_ClearAlarm", Action: "o_BuzzerState := 0"},
			}},
		},
	}
	return Config{
		Chart: chart,
		Cost:  codegen.DefaultCostModel(),
		Board: hw.BoardConfig{
			Name: "pump-board",
			Sensors: []hw.SensorConfig{
				{Name: "bolus_button", Signal: "sig_bolus_button", SamplePeriod: 5 * ms, ReadCost: 20 * time.Microsecond},
				{Name: "reservoir_empty", Signal: "sig_reservoir_empty", SamplePeriod: 5 * ms, ReadCost: 20 * time.Microsecond},
				{Name: "clear_button", Signal: "sig_clear_button", SamplePeriod: 5 * ms, ReadCost: 20 * time.Microsecond},
			},
			Actuators: []hw.ActuatorConfig{
				{Name: "pump_motor", Signal: "sig_pump_motor", Latency: 3 * ms, WriteCost: 30 * time.Microsecond},
				{Name: "buzzer", Signal: "sig_buzzer", Latency: ms, WriteCost: 30 * time.Microsecond},
			},
		},
		Inputs: []InputBinding{
			{Sensor: "bolus_button", Event: "i_BolusReq"},
			{Sensor: "reservoir_empty", Event: "i_EmptyAlarm"},
			{Sensor: "clear_button", Event: "i_ClearAlarm"},
		},
		Outputs: []OutputBinding{
			{Var: "o_MotorState", Actuator: "pump_motor"},
			{Var: "o_BuzzerState", Actuator: "buzzer"},
		},
	}
}

func newSys(t *testing.T, scheme Scheme, level Instrument) *System {
	t.Helper()
	sys, err := NewSystem(pumpConfig(), scheme, level)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	return sys
}

// pressBolus presses the bolus button at `at` for `width`.
func pressBolus(sys *System, at, width time.Duration) {
	sys.Env.PulseAt(at, "sig_bolus_button", 1, 0, width)
}

func motorOnEvent(t *testing.T, sys *System) fourvar.Event {
	t.Helper()
	e, ok := sys.Trace.FirstAt(fourvar.Controlled, "sig_pump_motor", 0, func(v int64) bool { return v == 1 })
	if !ok {
		t.Fatalf("motor never started; trace:\n%s", sys.Trace.String())
	}
	return e
}

func TestScheme1BolusWithinDeadline(t *testing.T) {
	sys := newSys(t, DefaultScheme1(), RLevel)
	pressBolus(sys, 40*ms, 60*ms)
	sys.Run(500 * ms)
	m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
	c := motorOnEvent(t, sys)
	delay := c.At - m.At
	if delay <= 0 || delay > 100*ms {
		t.Fatalf("bolus start delay %v, want (0, 100ms]", delay)
	}
	// Scheme 1 worst case: sensor sample (5) + task phase (25) + exec + actuator (3).
	if delay > 40*ms {
		t.Fatalf("delay %v implausibly large for scheme 1", delay)
	}
}

func TestScheme1RLevelRecordsNoIOEvents(t *testing.T) {
	sys := newSys(t, DefaultScheme1(), RLevel)
	pressBolus(sys, 40*ms, 60*ms)
	sys.Run(300 * ms)
	for _, e := range sys.Trace.Events() {
		if e.Kind == fourvar.Input || e.Kind == fourvar.Output {
			t.Fatalf("R-level trace contains %v", e)
		}
	}
	if len(sys.TransTrace.Records()) != 0 {
		t.Fatal("R-level should not record transitions")
	}
}

func TestScheme1MLevelSegments(t *testing.T) {
	sys := newSys(t, DefaultScheme1(), MLevel)
	pressBolus(sys, 40*ms, 60*ms)
	sys.Run(500 * ms)
	spec := fourvar.MatchSpec{
		MName: "sig_bolus_button", MPred: func(v int64) bool { return v == 1 },
		IName: "i_BolusReq",
		OName: "o_MotorState", OPred: func(v int64) bool { return v == 1 },
		CName: "sig_pump_motor",
	}
	seg, ok := fourvar.Match(sys.Trace, sys.TransTrace, spec, 0)
	if !ok {
		t.Fatalf("no full chain; trace:\n%s", sys.Trace.String())
	}
	if seg.InputDelay() <= 0 || seg.OutputDelay() <= 0 || seg.CodeDelay() <= 0 {
		t.Fatalf("segments must be positive: %v", seg)
	}
	if seg.Total() != seg.InputDelay()+seg.CodeDelay()+seg.OutputDelay() {
		t.Fatal("segment identity violated")
	}
	// Two transitions: Idle->BolusRequested chained into
	// BolusRequested->Infusion.
	if len(seg.Transitions) != 2 {
		t.Fatalf("transitions: %v", seg.Transitions)
	}
	if seg.TransitionTotal() > seg.CodeDelay() {
		t.Fatalf("transition total %v exceeds code delay %v", seg.TransitionTotal(), seg.CodeDelay())
	}
}

func TestRLevelAndMLevelObserveSameTotals(t *testing.T) {
	// Probing must not perturb the system: the m->c delay is identical
	// across instrumentation levels.
	total := func(level Instrument) time.Duration {
		sys := newSys(t, DefaultScheme1(), level)
		pressBolus(sys, 37*ms, 60*ms)
		sys.Run(500 * ms)
		m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
		c := motorOnEvent(t, sys)
		return c.At - m.At
	}
	if r, m := total(RLevel), total(MLevel); r != m {
		t.Fatalf("R-level total %v != M-level total %v", r, m)
	}
}

func TestScheme2BolusWithinDeadline(t *testing.T) {
	sys := newSys(t, DefaultScheme2(), MLevel)
	pressBolus(sys, 33*ms, 60*ms)
	sys.Run(500 * ms)
	m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
	c := motorOnEvent(t, sys)
	delay := c.At - m.At
	if delay <= 0 || delay > 100*ms {
		t.Fatalf("scheme2 delay %v, want within 100ms", delay)
	}
}

func TestScheme2UsesQueuesAcrossTasks(t *testing.T) {
	sys := newSys(t, DefaultScheme2(), MLevel)
	pressBolus(sys, 33*ms, 60*ms)
	sys.Run(500 * ms)
	// The scheduler must have spawned the three pipeline tasks.
	names := map[string]bool{}
	for _, tk := range sys.Sched.Tasks() {
		names[tk.Name()] = true
	}
	for _, want := range []string{"sense", "codeM", "actuate"} {
		if !names[want] {
			t.Fatalf("missing task %q", want)
		}
	}
	if sys.InputsDropped() != 0 {
		t.Fatalf("dropped %d inputs", sys.InputsDropped())
	}
}

func TestScheme2SlowerThanScheme1(t *testing.T) {
	run := func(s Scheme) time.Duration {
		sys := newSys(t, s, RLevel)
		pressBolus(sys, 41*ms, 60*ms)
		sys.Run(500 * ms)
		m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
		c := motorOnEvent(t, sys)
		return c.At - m.At
	}
	d1 := run(DefaultScheme1())
	d2 := run(DefaultScheme2())
	if d2 <= d1 {
		t.Fatalf("pipeline scheme2 (%v) should be slower than scheme1 (%v)", d2, d1)
	}
}

func TestScheme3InterferenceDelaysResponse(t *testing.T) {
	// With the default interference load, at least some stimuli blow the
	// 100 ms deadline. Use a stimulus aligned right after the netdrv
	// burst starts.
	sys := newSys(t, DefaultScheme3(), RLevel)
	pressBolus(sys, 5*ms, 60*ms)
	sys.Run(2 * time.Second)
	m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
	e, ok := sys.Trace.FirstAt(fourvar.Controlled, "sig_pump_motor", 0, func(v int64) bool { return v == 1 })
	if ok {
		delay := e.At - m.At
		if delay <= 100*ms {
			t.Fatalf("expected interference to delay past deadline, got %v", delay)
		}
	}
	// ok==false (MAX: press missed entirely) is also an acceptable
	// violation mode for this scheme.
}

func TestScheme3CanMissShortPress(t *testing.T) {
	// A short press during the high-priority interference burst is missed
	// entirely: the sensing task does not run while netdrv computes.
	sys := newSys(t, DefaultScheme3(), RLevel)
	pressBolus(sys, 2*ms, 30*ms) // netdrv bursts 0-90ms at prio 4
	sys.Run(2 * time.Second)
	if _, ok := sys.Trace.FirstAt(fourvar.Controlled, "sig_pump_motor", 0, func(v int64) bool { return v == 1 }); ok {
		t.Fatal("expected the press to be missed (MAX)")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() string {
		sys, err := NewSystem(pumpConfig(), DefaultScheme3(), MLevel)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		pressBolus(sys, 10*ms, 60*ms)
		pressBolus(sys, 300*ms, 60*ms)
		sys.Run(time.Second)
		return sys.Trace.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic traces:\n%s\nvs\n%s", a, b)
	}
}

func TestNewSystemValidation(t *testing.T) {
	base := pumpConfig()
	s := DefaultScheme1()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil chart", func(c *Config) { c.Chart = nil }},
		{"no inputs", func(c *Config) { c.Inputs = nil }},
		{"no outputs", func(c *Config) { c.Outputs = nil }},
		{"unknown sensor", func(c *Config) { c.Inputs[0].Sensor = "ghost" }},
		{"unknown event", func(c *Config) { c.Inputs[0].Event = "i_Ghost" }},
		{"unknown actuator", func(c *Config) { c.Outputs[0].Actuator = "ghost" }},
		{"unknown output var", func(c *Config) { c.Outputs[0].Var = "o_Ghost" }},
		{"binding with neither event nor var", func(c *Config) {
			c.Inputs[0].Event = ""
			c.Inputs[0].Var = ""
		}},
	}
	for _, tc := range cases {
		cfg := base
		// Deep-copy the slices the mutation touches.
		cfg.Inputs = append([]InputBinding(nil), base.Inputs...)
		cfg.Outputs = append([]OutputBinding(nil), base.Outputs...)
		tc.mutate(&cfg)
		if _, err := NewSystem(cfg, s, RLevel); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMappingExposed(t *testing.T) {
	sys := newSys(t, DefaultScheme1(), RLevel)
	mp := sys.Mapping()
	if mp.MtoI["sig_bolus_button"] != "i_BolusReq" {
		t.Fatalf("mapping: %+v", mp)
	}
	if mp.OtoC["o_MotorState"] != "sig_pump_motor" {
		t.Fatalf("mapping: %+v", mp)
	}
	if sys.SchemeName() != "scheme1" || sys.Level() != RLevel {
		t.Fatal("metadata wrong")
	}
}

func TestLevelInputBindingVariableRouting(t *testing.T) {
	// A chart that reads a level input through a bound variable.
	chart := &statechart.Chart{
		Name:       "level",
		TickPeriod: time.Millisecond,
		Vars: []statechart.VarDecl{
			{Name: "in_level", Type: statechart.Int, Kind: statechart.Input},
			{Name: "o_high", Type: statechart.Bool, Kind: statechart.Output},
		},
		Initial: "Watch",
		States: []*statechart.State{
			{Name: "Watch", Transitions: []statechart.Transition{
				{To: "High", Guard: "in_level >= 5", Action: "o_high := 1"},
			}},
			{Name: "High"},
		},
	}
	cfg := Config{
		Chart: chart,
		Cost:  codegen.DefaultCostModel(),
		Board: hw.BoardConfig{
			Sensors:   []hw.SensorConfig{{Name: "lvl", Signal: "sig_lvl", SamplePeriod: 2 * ms}},
			Actuators: []hw.ActuatorConfig{{Name: "led", Signal: "sig_led"}},
		},
		Inputs:  []InputBinding{{Sensor: "lvl", Var: "in_level"}},
		Outputs: []OutputBinding{{Var: "o_high", Actuator: "led"}},
	}
	sys, err := NewSystem(cfg, DefaultScheme1(), MLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	sys.Env.SetAt(40*ms, "sig_lvl", 7)
	sys.Run(300 * ms)
	if sys.Env.Get("sig_led") != 1 {
		t.Fatalf("led=%d; trace:\n%s", sys.Env.Get("sig_led"), sys.Trace.String())
	}
	// The i-event for the variable routing was recorded.
	if _, ok := sys.Trace.FirstAt(fourvar.Input, "in_level", 0, func(v int64) bool { return v == 7 }); !ok {
		t.Fatalf("missing i-event for level input; trace:\n%s", sys.Trace.String())
	}
}

// traceFingerprint renders every recorded event; byte equality of two
// fingerprints means the runs observed identical executions.
func traceFingerprint(sys *System) string {
	var b strings.Builder
	for e := range sys.Trace.All() {
		fmt.Fprintf(&b, "%d %s %d %d\n", e.Kind, e.Name, e.Value, e.At)
	}
	return b.String()
}

// TestPrebuiltMatchesNewSystem: a system assembled from a Prebuilt is
// observationally identical to one assembled by NewSystem's
// compile-per-call path.
func TestPrebuiltMatchesNewSystem(t *testing.T) {
	ref := newSys(t, DefaultScheme1(), MLevel)
	pressBolus(ref, 40*ms, 60*ms)
	ref.Run(500 * ms)

	pb, err := Precompile(pumpConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pb.NewSystem(DefaultScheme1(), MLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	pressBolus(sys, 40*ms, 60*ms)
	sys.Run(500 * ms)

	if got, want := traceFingerprint(sys), traceFingerprint(ref); got != want {
		t.Fatalf("prebuilt run diverges:\n got: %s\nwant: %s", got, want)
	}
	if len(sys.TransTrace.Records()) != len(ref.TransTrace.Records()) {
		t.Fatal("transition traces diverge")
	}
}

// TestScratchReuseDeterministic: a sequence of runs through one Scratch
// reproduces the fresh-system execution exactly — the scratch-reuse
// contract the campaign engine's per-worker recycling relies on.
func TestScratchReuseDeterministic(t *testing.T) {
	pb, err := Precompile(pumpConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := traceFingerprint(func() *System {
		sys := newSys(t, DefaultScheme2(), MLevel)
		pressBolus(sys, 40*ms, 60*ms)
		sys.Run(500 * ms)
		return sys
	}())

	sc := &Scratch{}
	for i := 0; i < 3; i++ {
		sys, err := pb.NewSystem(DefaultScheme2(), MLevel, sc)
		if err != nil {
			t.Fatal(err)
		}
		pressBolus(sys, 40*ms, 60*ms)
		sys.Run(500 * ms)
		if got := traceFingerprint(sys); got != want {
			t.Fatalf("scratch run %d diverges:\n got: %s\nwant: %s", i, got, want)
		}
		// The retained TransitionTrace must be fresh per system: mutating
		// run i's records must be impossible via run i+1 (distinct values).
		if i > 0 && len(sys.TransTrace.Records()) == 0 {
			t.Fatal("reused-scratch run lost its transition trace")
		}
		sys.Shutdown()
	}
}

// TestScratchClearsTaps: a tap registered by one run (the online
// monitor's wiring) must not observe the next run built from the same
// scratch.
func TestScratchClearsTaps(t *testing.T) {
	pb, err := Precompile(pumpConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	sys1, err := pb.NewSystem(DefaultScheme1(), RLevel, sc)
	if err != nil {
		t.Fatal(err)
	}
	leaked := 0
	sys1.Trace.Tap(func(fourvar.Event) { leaked++ })
	pressBolus(sys1, 40*ms, 60*ms)
	sys1.Run(300 * ms)
	sys1.Shutdown()
	seen := leaked

	sys2, err := pb.NewSystem(DefaultScheme1(), RLevel, sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys2.Shutdown)
	pressBolus(sys2, 40*ms, 60*ms)
	sys2.Run(300 * ms)
	if leaked != seen {
		t.Fatalf("tap from run 1 observed %d events of run 2", leaked-seen)
	}
	if sys2.Trace.Len() == 0 {
		t.Fatal("run 2 recorded nothing")
	}
}
