package platform

import (
	"testing"
	"time"

	"rmtest/internal/codegen"
	"rmtest/internal/fourvar"
	"rmtest/internal/hw"
	"rmtest/internal/statechart"
)

// flipFlopConfig builds a chart that toggles its output every E_CLK tick,
// so one 25 ms scheme-1 invocation batches ~25 opposing writes.
func flipFlopConfig() Config {
	chart := &statechart.Chart{
		Name:       "flipflop",
		TickPeriod: time.Millisecond,
		Vars: []statechart.VarDecl{
			{Name: "out", Type: statechart.Bool, Kind: statechart.Output},
			{Name: "dummy_in", Type: statechart.Bool, Kind: statechart.Input},
		},
		Initial: "A",
		States: []*statechart.State{
			{Name: "A", Transitions: []statechart.Transition{
				{To: "B", Trigger: "after(1, E_CLK)", Action: "out := 1"},
			}},
			{Name: "B", Transitions: []statechart.Transition{
				{To: "A", Trigger: "after(1, E_CLK)", Action: "out := 0"},
			}},
		},
	}
	return Config{
		Chart: chart,
		Cost:  codegen.ZeroCostModel(),
		Board: hw.BoardConfig{
			Sensors:   []hw.SensorConfig{{Name: "s", Signal: "sig_in", SamplePeriod: 5 * ms}},
			Actuators: []hw.ActuatorConfig{{Name: "a", Signal: "sig_out"}},
		},
		Inputs:  []InputBinding{{Sensor: "s", Var: "dummy_in"}},
		Outputs: []OutputBinding{{Var: "out", Actuator: "a"}},
	}
}

func TestStepChartMergesOpposingWrites(t *testing.T) {
	sys, err := NewSystem(flipFlopConfig(), DefaultScheme1(), MLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	sys.Run(500 * time.Millisecond)
	// The chart toggled hundreds of times (visible as transitions)...
	if n := sys.Exec.TransitionsTaken(); n < 400 {
		t.Fatalf("transitions=%d, expected hundreds", n)
	}
	// ...but the committed output only changes by the batch's net effect:
	// at most one actuator command per invocation (~20 in 500ms), not one
	// per tick (~500).
	cmds := sys.Board.Actuator("a").Commands()
	if cmds > 25 {
		t.Fatalf("actuator commands=%d; batching should commit net values", cmds)
	}
}

func TestOutputsDroppedWhenActuationStarves(t *testing.T) {
	s := DefaultScheme2()
	s.ActPeriod = 10 * time.Second // actuation never drains in this run
	s.QueueCap = 1
	cfg := pumpConfig()
	sys, err := NewSystem(cfg, s, RLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	// Bolus start fills the single outQ slot; the motor-stop message 4 s
	// later finds it still occupied and is dropped.
	sys.Env.PulseAt(40*ms, "sig_bolus_button", 1, 0, 60*ms)
	sys.Run(6 * time.Second)
	if sys.OutputsDropped() == 0 {
		t.Fatal("expected dropped output messages with a starved actuation task")
	}
}

func TestScheme1CustomPeriodAndPriority(t *testing.T) {
	sys, err := NewSystem(pumpConfig(), &Scheme1{Period: 10 * ms, Prio: 5}, RLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	sys.Env.PulseAt(33*ms, "sig_bolus_button", 1, 0, 60*ms)
	sys.Run(300 * ms)
	// A 10 ms polling period bounds the response tighter than the default.
	m, _ := sys.Trace.FirstAt(fourvar.Monitored, "sig_bolus_button", 0, func(v int64) bool { return v == 1 })
	c, ok := sys.Trace.FirstAt(fourvar.Controlled, "sig_pump_motor", 0, func(v int64) bool { return v >= 1 })
	if !ok || c.At-m.At > 25*ms {
		t.Fatalf("ok=%v delay=%v", ok, c.At-m.At)
	}
	tk := sys.Sched.Tasks()[0]
	if tk.Priority() != 5 || tk.Period() != 10*ms {
		t.Fatalf("task meta: prio=%d period=%v", tk.Priority(), tk.Period())
	}
}
