package platform

import (
	"time"

	"rmtest/internal/codegen"
	"rmtest/internal/env"
	"rmtest/internal/fourvar"
	"rmtest/internal/hw"
	"rmtest/internal/rtos"
	"rmtest/internal/sim"
)

// This file orchestrates snapshot/restore across the whole vertical
// stack, for the prefix-sharing candidate evaluator: when many
// candidate schedules share a stimulus prefix, the shared prefix is
// simulated once, a snapshot is taken at the divergence instant, and
// each branch resumes from the snapshot instead of replaying the prefix
// from time zero.
//
// A snapshot is only taken at a quiescent instant — kernel idle between
// events, no task mid-release, no compute/switch in flight — so no
// goroutine stack state needs capturing. Restore then proceeds in a
// fixed order:
//
//  1. RewindTasks — unwind any goroutine a later run left parked
//     mid-body back to its release boundary.
//  2. Kernel.Rewind — discard every pending event, rewind the clock to
//     the snapshot instant and the sequence counter to zero.
//  3. Component data restores — scheduler/tasks/queues, devices,
//     signals, executor, traces, scheme hooks, platform counters. Data
//     first: a branch's arm() may write device fault windows directly
//     (InjectJitter and friends set struct fields at arm time), and
//     those writes must land on top of the restored state, not under it.
//  4. Re-arm captured construction events in original sequence order.
//  5. The caller's arm() — the branch's own suffix stimuli or fault
//     plan, scheduled as construction events.
//  6. MarkConstruction — everything re-armed after this point is a
//     runtime event again.
//  7. Re-arm captured runtime events in original sequence order.
//
// Steps 4-7 reproduce the plain-run sequence-number law — at tied
// instants every construction event (stimuli, fault window edges, task
// starts, board ticks) fires before any runtime event — so a resumed
// branch interleaves exactly as the same schedule simulated from
// scratch. Each captured closure encodes one fixed pending effect
// acting on component state the restore has already rewritten, so
// replaying it verbatim is sound. The whole procedure is single-
// threaded plain code: no goroutine is running between RewindTasks'
// final acknowledgement and the next Kernel.Run, so the commit order is
// a function of the snapshot alone, never of goroutine scheduling.

type rewindHook struct {
	save    func() any
	restore func(any)
}

// RegisterRewindState registers scheme-private mutable state with the
// snapshot machinery: save captures it, restore rewrites it. Schemes
// call this from Start for state that lives in task-body closures (the
// input edge-detection maps).
func (sys *System) RegisterRewindState(save func() any, restore func(any)) {
	sys.rewindHooks = append(sys.rewindHooks, rewindHook{save: save, restore: restore})
}

// SysSnap is a complete capture of a System at a quiescent instant,
// created by Snapshot and consumed by Restore. It is opaque to callers.
type SysSnap struct {
	now    sim.Time
	events []sim.PendingEvent

	sched *rtos.SchedSnap
	board *hw.BoardSnap
	env   *env.EnvSnap
	exec  *codegen.ExecSnap

	traceMark fourvar.TraceMark
	transMark fourvar.TransMark

	hooks []any

	inputsDropped  uint64
	outputsDropped uint64
	chartTicks     int64
}

// At returns the virtual instant the snapshot was taken at.
func (s *SysSnap) At() sim.Time { return s.now }

// Snapshot captures the System's complete state at the current instant.
// It returns false when the system is not snapshot-eligible: the
// scheduler is not quiescent, a stop condition is installed (the online
// monitor's early-stop watchdog), or the trace has taps (run-scoped
// observers whose state a rewind cannot restore). Callers fall back to
// plain evaluation on false.
func (sys *System) Snapshot() (*SysSnap, bool) {
	if sys.Kernel.StopConds() != 0 || sys.Trace.TapCount() != 0 {
		return nil, false
	}
	sched, ok := sys.Sched.Snapshot()
	if !ok {
		return nil, false
	}
	return &SysSnap{
		now:            sys.Kernel.Now(),
		events:         sys.Kernel.CaptureEvents(),
		sched:          sched,
		board:          sys.Board.Snapshot(),
		env:            sys.Env.Snapshot(),
		exec:           sys.Exec.Snapshot(),
		traceMark:      sys.Trace.Mark(),
		transMark:      sys.TransTrace.Mark(),
		hooks:          sys.saveHooks(),
		inputsDropped:  sys.inputsDropped,
		outputsDropped: sys.outputsDropped,
		chartTicks:     sys.chartTicks,
	}, true
}

func (sys *System) saveHooks() []any {
	out := make([]any, len(sys.rewindHooks))
	for i, h := range sys.rewindHooks {
		out[i] = h.save()
	}
	return out
}

// Restore rewinds the System to a snapshot previously taken on it, then
// runs arm (which may be nil) to schedule the resuming branch's own
// suffix stimuli or fault plan as construction events. On return the
// system's state is indistinguishable from a plain run of the restored
// prefix plus the armed suffix, paused at the snapshot instant.
func (sys *System) Restore(snap *SysSnap, arm func()) {
	sys.Sched.RewindTasks()
	sys.Kernel.Rewind(snap.now)

	sys.Sched.Restore(snap.sched)
	sys.Board.Restore(snap.board)
	sys.Env.Restore(snap.env)
	sys.Exec.Restore(snap.exec)
	sys.Trace.TruncateTo(snap.traceMark)
	sys.TransTrace.TruncateTo(snap.transMark)
	for i, h := range sys.rewindHooks {
		h.restore(snap.hooks[i])
	}
	sys.inputsDropped = snap.inputsDropped
	sys.outputsDropped = snap.outputsDropped
	sys.chartTicks = snap.chartTicks

	for _, ev := range snap.events {
		if ev.Construction {
			sys.Kernel.At(ev.At, ev.Fn)
		}
	}
	if arm != nil {
		arm()
	}
	sys.Kernel.MarkConstruction()
	for _, ev := range snap.events {
		if !ev.Construction {
			sys.Kernel.At(ev.At, ev.Fn)
		}
	}
}

// AdvanceSnapshot tuning. A divergence bound rarely lands on a quiescent
// instant — under load a task is usually mid-burst — so the advance
// captures the snapshot at the latest quiescent instant-boundary inside a
// lookback window before the bound, and the resuming branches replay the
// short shared tail. The window covers several periods of every
// case-study scheme (the longest task period is 130 ms); the spacing
// bounds how many full-state captures one advance can cost.
const (
	snapWindow  = 150 * time.Millisecond // lookback before the bound
	snapSpacing = 10 * time.Millisecond  // min gap between captures
)

// AdvanceSnapshot runs the system forward like Kernel.RunBefore(to) —
// events strictly before to fire, the clock lands on to — and returns a
// snapshot captured at the latest eligible instant at or before to. It
// returns ok=false when no instant in the lookback window was
// snapshot-eligible (a saturated scheduler is never quiescent); the
// caller falls back to plain evaluation.
func (sys *System) AdvanceSnapshot(to sim.Time) (*SysSnap, bool) {
	var best *SysSnap
	lastTry := sim.Time(-1)
	sys.Kernel.RunBeforeHook(to, func() {
		now := sys.Kernel.Now()
		if now+snapWindow < to {
			return
		}
		if best != nil && now < to && lastTry >= 0 && now-lastTry < snapSpacing {
			return
		}
		lastTry = now
		if snap, ok := sys.Snapshot(); ok {
			best = snap
		}
	})
	return best, best != nil
}

// DetachTransTrace hands ownership of the current transition trace to
// whoever holds a reference to it (an extracted MResult) and installs an
// equivalent clone for the system's own continued use, so later restores
// truncate the clone instead of mutating data a result retains.
func (sys *System) DetachTransTrace() {
	sys.TransTrace = sys.TransTrace.Clone()
}
