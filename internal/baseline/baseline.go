// Package baseline implements the comparison point the paper contrasts
// its framework against (§I, citing Larsen/Mikucionis/Nielsen's online
// UPPAAL testing): an online black-box conformance monitor that observes
// only the boundary between the system and its environment.
//
// The monitor watches monitored and controlled signals while the system
// runs and checks timed stimulus/response rules. Like the paper's account
// of the prior work, it can detect THAT a timing requirement was violated
// — but "it lacks the ability to measure internal time-delays occurring
// in the implemented system such as input and output delay". The
// ablation benchmarks quantify exactly that gap in diagnostic
// information against the layered R-M flow.
package baseline

import (
	"fmt"

	"rmtest/internal/env"
	"rmtest/internal/sim"
)

// Pred is a value predicate on signal changes.
type Pred func(int64) bool

// Rule is one timed stimulus/response expectation.
type Rule struct {
	Name     string
	Stimulus string // monitored signal
	StimOK   Pred
	Response string // controlled signal
	RespOK   Pred
	Bound    sim.Time
	// Timeout declares the observation window; a pending stimulus older
	// than this is a timeout verdict. Zero defaults to 10x Bound.
	Timeout sim.Time
}

func (r Rule) effectiveTimeout() sim.Time {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return 10 * r.Bound
}

// Verdict is the monitor's judgement for one observed stimulus.
type Verdict struct {
	Rule       string
	StimulusAt sim.Time
	ResponseAt sim.Time
	Responded  bool
	Delay      sim.Time
	Conforms   bool
}

func (v Verdict) String() string {
	if !v.Responded {
		return fmt.Sprintf("%s: stimulus@%v -> no response (timeout)", v.Rule, v.StimulusAt)
	}
	status := "conforms"
	if !v.Conforms {
		status = "VIOLATION"
	}
	return fmt.Sprintf("%s: stimulus@%v -> response@%v delay=%v %s", v.Rule, v.StimulusAt, v.ResponseAt, v.Delay, status)
}

type pending struct {
	rule int
	at   sim.Time
}

// Monitor is the online conformance checker.
type Monitor struct {
	rules    []Rule
	pendings []pending
	verdicts []Verdict
	now      func() sim.Time
}

// NewMonitor creates a monitor for the given rules.
func NewMonitor(rules []Rule) (*Monitor, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("baseline: monitor needs at least one rule")
	}
	for _, r := range rules {
		if r.Name == "" || r.Stimulus == "" || r.Response == "" || r.StimOK == nil || r.RespOK == nil || r.Bound <= 0 {
			return nil, fmt.Errorf("baseline: malformed rule %+v", r)
		}
	}
	return &Monitor{rules: rules}, nil
}

// Attach wires the monitor onto the environment's signals. It observes
// online, black-box: only m- and c-signal changes, nothing inside the
// platform.
func (mo *Monitor) Attach(e *env.Environment) {
	mo.now = e.Kernel().Now
	seen := map[string]bool{}
	for i := range mo.rules {
		r := &mo.rules[i]
		if !seen[r.Stimulus] {
			seen[r.Stimulus] = true
			sig := r.Stimulus
			e.Watch(sig, func(_ string, _, now int64, at sim.Time) {
				mo.onStimulus(sig, now, at)
			})
		}
		if !seen[r.Response] {
			seen[r.Response] = true
			sig := r.Response
			e.Watch(sig, func(_ string, _, now int64, at sim.Time) {
				mo.onResponse(sig, now, at)
			})
		}
	}
}

func (mo *Monitor) onStimulus(sig string, v int64, at sim.Time) {
	mo.expire(at)
	for i, r := range mo.rules {
		if r.Stimulus == sig && r.StimOK(v) {
			mo.pendings = append(mo.pendings, pending{rule: i, at: at})
		}
		// A signal can be the response of one rule and the stimulus of
		// another; check both roles.
		if r.Response == sig && r.RespOK(v) {
			mo.matchResponse(i, at)
		}
	}
}

func (mo *Monitor) onResponse(sig string, v int64, at sim.Time) {
	mo.expire(at)
	for i, r := range mo.rules {
		if r.Response == sig && r.RespOK(v) {
			mo.matchResponse(i, at)
		}
	}
}

// matchResponse discharges the oldest pending stimulus of the rule.
func (mo *Monitor) matchResponse(rule int, at sim.Time) {
	for i, p := range mo.pendings {
		if p.rule != rule {
			continue
		}
		mo.pendings = append(mo.pendings[:i], mo.pendings[i+1:]...)
		d := at - p.at
		mo.verdicts = append(mo.verdicts, Verdict{
			Rule:       mo.rules[rule].Name,
			StimulusAt: p.at,
			ResponseAt: at,
			Responded:  true,
			Delay:      d,
			Conforms:   d <= mo.rules[rule].Bound,
		})
		return
	}
}

// expire converts over-age pendings into timeout verdicts.
func (mo *Monitor) expire(now sim.Time) {
	kept := mo.pendings[:0]
	for _, p := range mo.pendings {
		if now-p.at > mo.rules[p.rule].effectiveTimeout() {
			mo.verdicts = append(mo.verdicts, Verdict{
				Rule:       mo.rules[p.rule].Name,
				StimulusAt: p.at,
			})
			continue
		}
		kept = append(kept, p)
	}
	mo.pendings = kept
}

// Flush finalises the run at the given instant: every still-pending
// stimulus becomes a timeout verdict.
func (mo *Monitor) Flush(now sim.Time) {
	for _, p := range mo.pendings {
		mo.verdicts = append(mo.verdicts, Verdict{
			Rule:       mo.rules[p.rule].Name,
			StimulusAt: p.at,
		})
	}
	mo.pendings = nil
	_ = now
}

// Verdicts returns all verdicts so far, in completion order.
func (mo *Monitor) Verdicts() []Verdict {
	return append([]Verdict(nil), mo.verdicts...)
}

// Conforms reports whether every verdict so far conforms.
func (mo *Monitor) Conforms() bool {
	for _, v := range mo.verdicts {
		if !v.Responded || !v.Conforms {
			return false
		}
	}
	return true
}

// Violations returns the non-conforming verdicts.
func (mo *Monitor) Violations() []Verdict {
	var out []Verdict
	for _, v := range mo.verdicts {
		if !v.Responded || !v.Conforms {
			out = append(out, v)
		}
	}
	return out
}
