package baseline

import (
	"strings"
	"testing"
	"time"

	"rmtest/internal/core"
	"rmtest/internal/env"
	"rmtest/internal/gpca"
	"rmtest/internal/platform"
	"rmtest/internal/sim"
)

const ms = time.Millisecond

func req1Rule() Rule {
	return Rule{
		Name:     "REQ1",
		Stimulus: gpca.SigBolusButton,
		StimOK:   func(v int64) bool { return v == 1 },
		Response: gpca.SigPumpMotor,
		RespOK:   func(v int64) bool { return v >= 1 },
		Bound:    100 * ms,
		Timeout:  time.Second,
	}
}

func runPump(t *testing.T, scheme platform.Scheme, presses []sim.Time) *Monitor {
	t.Helper()
	sys, err := platform.NewSystem(gpca.PlatformConfig(), scheme, platform.RLevel)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)
	mo, err := NewMonitor([]Rule{req1Rule()})
	if err != nil {
		t.Fatal(err)
	}
	mo.Attach(sys.Env)
	var horizon sim.Time
	for _, p := range presses {
		sys.Env.PulseAt(p, gpca.SigBolusButton, 1, 0, gpca.ButtonPress)
		if p > horizon {
			horizon = p
		}
	}
	sys.Run(horizon + 2*time.Second)
	mo.Flush(sys.Kernel.Now())
	return mo
}

func TestMonitorConformingRun(t *testing.T) {
	mo := runPump(t, platform.DefaultScheme1(), []sim.Time{50 * ms, 5 * time.Second})
	vs := mo.Verdicts()
	if len(vs) != 2 {
		t.Fatalf("verdicts=%v", vs)
	}
	if !mo.Conforms() {
		t.Fatalf("scheme1 should conform: %v", vs)
	}
	for _, v := range vs {
		if v.Delay <= 0 || v.Delay > 100*ms {
			t.Fatalf("verdict %v", v)
		}
	}
}

func TestMonitorDetectsViolation(t *testing.T) {
	mo := runPump(t, platform.DefaultScheme3(), []sim.Time{5 * ms, 5 * time.Second})
	if mo.Conforms() {
		t.Fatalf("scheme3 should violate: %v", mo.Verdicts())
	}
	if len(mo.Violations()) == 0 {
		t.Fatal("no violations reported")
	}
}

func TestMonitorTimeoutVerdict(t *testing.T) {
	// A short press swallowed by interference yields a no-response
	// verdict after Flush.
	mo := runPump(t, platform.DefaultScheme3(), []sim.Time{2 * ms})
	found := false
	for _, v := range mo.Verdicts() {
		if !v.Responded {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a timeout verdict: %v", mo.Verdicts())
	}
}

// TestBaselineBlindToSegments documents the framework's advantage: the
// baseline sees the same violation R-testing sees, but carries zero
// information about which platform path caused it, while M-testing
// decomposes it into segments.
func TestBaselineBlindToSegments(t *testing.T) {
	factory := gpca.Factory(func() platform.Scheme { return platform.DefaultScheme3() })
	runner, err := core.NewRunner(factory, gpca.REQ1())
	if err != nil {
		t.Fatal(err)
	}
	g := core.Generator{N: 6, Start: 50 * ms, Spacing: 4500 * ms, Strategy: core.JitteredSpacing, Seed: 11}
	tc, err := g.Generate(gpca.REQ1())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.RunRM(tc, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.R.Passed() {
		t.Skip("no violation this seed")
	}
	// Baseline run over the same stimuli.
	mo := runPump(t, platform.DefaultScheme3(), tc.Stimuli)
	if mo.Conforms() {
		t.Fatalf("baseline missed the violation R-testing found")
	}
	// The baseline's verdicts carry only delay+conformance...
	for _, v := range mo.Violations() {
		if v.Responded && v.Delay <= 100*ms {
			t.Fatalf("inconsistent verdict %v", v)
		}
	}
	// ...while M-testing yields per-segment measurements for diagnosis.
	if rep.M == nil || len(rep.Diagnosis) == 0 {
		t.Fatal("R-M flow should provide diagnosis")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil); err == nil {
		t.Fatal("empty rules should fail")
	}
	if _, err := NewMonitor([]Rule{{}}); err == nil {
		t.Fatal("malformed rule should fail")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Rule: "R", StimulusAt: ms, ResponseAt: 3 * ms, Responded: true, Delay: 2 * ms, Conforms: true}
	if !strings.Contains(v.String(), "conforms") {
		t.Fatalf("string: %s", v)
	}
	v.Conforms = false
	if !strings.Contains(v.String(), "VIOLATION") {
		t.Fatalf("string: %s", v)
	}
	v.Responded = false
	if !strings.Contains(v.String(), "timeout") {
		t.Fatalf("string: %s", v)
	}
}

func TestOfflineExpiry(t *testing.T) {
	k := sim.New()
	e := env.New(k)
	e.Define("stim", 0)
	e.Define("resp", 0)
	mo, err := NewMonitor([]Rule{{
		Name: "r", Stimulus: "stim", StimOK: func(v int64) bool { return v == 1 },
		Response: "resp", RespOK: func(v int64) bool { return v == 1 },
		Bound: 10 * ms, Timeout: 50 * ms,
	}})
	if err != nil {
		t.Fatal(err)
	}
	mo.Attach(e)
	e.SetAt(0, "stim", 1)
	// A second stimulus long after the first's timeout: the first must
	// expire rather than match the late response.
	e.SetAt(200*ms, "stim", 0)
	e.SetAt(201*ms, "stim", 1)
	e.SetAt(205*ms, "resp", 1)
	k.Run(time.Second)
	mo.Flush(k.Now())
	vs := mo.Verdicts()
	if len(vs) != 2 {
		t.Fatalf("verdicts=%v", vs)
	}
	if vs[0].Responded {
		t.Fatalf("first stimulus should time out: %v", vs[0])
	}
	if !vs[1].Responded || vs[1].Delay != 4*ms || !vs[1].Conforms {
		t.Fatalf("second verdict wrong: %v", vs[1])
	}
}
