// Package coverage implements the test-adequacy measurement the paper
// leaves as future work (§V): "we plan to study test coverage and test
// sufficiency from which test cases can be systematically generated in
// order to automate the proposed R-M testing".
//
// Four adequacy dimensions are measured for an executed R-M test suite:
//
//   - Transition coverage: which transitions of CODE(M) executed (from
//     the M-level transition trace).
//   - State coverage: which chart states were entered.
//   - Phase coverage: how uniformly the stimulus instants covered the
//     phase space of a platform period — timing violations live at
//     particular alignments, so a suite that probes few phases can miss
//     them even with many samples.
//   - Boundary coverage: whether the suite produced delays close to the
//     requirement bound (boundary-value adequacy for timing).
//
// Suggest closes the loop: it proposes additional stimulus instants that
// target uncovered phase bins, systematically extending a test case until
// the phase space is covered.
package coverage

import (
	"fmt"
	"sort"
	"strings"

	"rmtest/internal/codegen"
	"rmtest/internal/core"
	"rmtest/internal/fourvar"
	"rmtest/internal/sim"
	"rmtest/internal/statechart"
)

// TransitionCoverage reports which generated-code transitions executed.
type TransitionCoverage struct {
	Total     int
	Covered   int
	Counts    map[string]int // label -> execution count
	Uncovered []string       // labels never executed, sorted
}

// Ratio returns covered/total in [0,1]; 0 for an empty chart.
func (tc TransitionCoverage) Ratio() float64 {
	if tc.Total == 0 {
		return 0
	}
	return float64(tc.Covered) / float64(tc.Total)
}

// Transitions measures transition coverage of prog from the M-level
// transition trace.
func Transitions(prog *codegen.Program, tt *fourvar.TransitionTrace) TransitionCoverage {
	out := TransitionCoverage{
		Total:  len(prog.Trans),
		Counts: make(map[string]int, len(prog.Trans)),
	}
	counts := make(map[int]int)
	for _, r := range tt.Records() {
		counts[r.Index]++
	}
	for _, t := range prog.Trans {
		n := counts[t.ID]
		out.Counts[t.Label] = n
		if n > 0 {
			out.Covered++
		} else {
			out.Uncovered = append(out.Uncovered, t.Label)
		}
	}
	sort.Strings(out.Uncovered)
	return out
}

// StateCoverage reports which chart states were entered.
type StateCoverage struct {
	Total     int
	Covered   int
	Uncovered []string
}

// Ratio returns covered/total in [0,1].
func (sc StateCoverage) Ratio() float64 {
	if sc.Total == 0 {
		return 0
	}
	return float64(sc.Covered) / float64(sc.Total)
}

// States measures state coverage: the initial configuration plus every
// transition target (and source) seen in the trace.
func States(prog *codegen.Program, tt *fourvar.TransitionTrace) StateCoverage {
	entered := make(map[int]bool)
	// The initial chain is always entered.
	for sid := prog.InitState; sid >= 0; {
		entered[sid] = true
		sid = prog.States[sid].Initial
	}
	for _, r := range tt.Records() {
		if r.Index < 0 || r.Index >= len(prog.Trans) {
			continue
		}
		t := prog.Trans[r.Index]
		entered[t.From] = true
		// Entering the target enters its initial chain too.
		for sid := t.To; sid >= 0; {
			entered[sid] = true
			sid = prog.States[sid].Initial
		}
	}
	// Parents of entered states are entered.
	for sid := range entered {
		for p := prog.States[sid].Parent; p >= 0; p = prog.States[p].Parent {
			entered[p] = true
		}
	}
	out := StateCoverage{Total: len(prog.States)}
	for _, s := range prog.States {
		if entered[s.ID] {
			out.Covered++
		} else {
			out.Uncovered = append(out.Uncovered, s.Name)
		}
	}
	sort.Strings(out.Uncovered)
	return out
}

// PhaseCoverage reports how the stimulus instants are distributed over
// the phase space of a platform period.
type PhaseCoverage struct {
	Period sim.Time
	Bins   []int // hit count per bin
}

// Ratio returns the fraction of non-empty bins.
func (pc PhaseCoverage) Ratio() float64 {
	if len(pc.Bins) == 0 {
		return 0
	}
	hit := 0
	for _, n := range pc.Bins {
		if n > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(pc.Bins))
}

// EmptyBins returns the indices of uncovered phase bins.
func (pc PhaseCoverage) EmptyBins() []int {
	var out []int
	for i, n := range pc.Bins {
		if n == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Phases bins the stimulus instants by their phase within period. A
// non-positive period or bin count yields the defined empty measurement
// — no bins, Ratio 0, no empty-bin suggestions — rather than a silently
// substituted default: degenerate inputs mean the caller has no phase
// space to cover, and inventing one would report adequacy of a period
// nobody asked about.
func Phases(stimuli []sim.Time, period sim.Time, bins int) PhaseCoverage {
	if bins <= 0 || period <= 0 {
		return PhaseCoverage{Period: period}
	}
	pc := PhaseCoverage{Period: period, Bins: make([]int, bins)}
	for _, at := range stimuli {
		phase := at % period
		idx := int(int64(phase) * int64(bins) / int64(period))
		if idx >= bins {
			idx = bins - 1
		}
		pc.Bins[idx]++
	}
	return pc
}

// BoundaryCoverage reports how close the observed delays came to the
// requirement bound.
type BoundaryCoverage struct {
	Bound sim.Time
	// NearBound counts samples whose delay lies within Tolerance of the
	// bound (on either side) — the samples that actually probe the
	// requirement's edge.
	NearBound int
	Tolerance float64
	Samples   int
	// ClosestBelow / ClosestAbove are the delays bracketing the bound
	// most tightly (zero when no sample on that side).
	ClosestBelow sim.Time
	ClosestAbove sim.Time
}

// Adequate reports whether the suite probed the boundary at all.
func (bc BoundaryCoverage) Adequate() bool { return bc.NearBound > 0 }

// Boundary measures boundary-value adequacy of the R-testing samples.
func Boundary(samples []core.SampleResult, bound sim.Time, tolerance float64) BoundaryCoverage {
	if tolerance <= 0 {
		tolerance = 0.2
	}
	bc := BoundaryCoverage{Bound: bound, Tolerance: tolerance}
	lo := sim.Time(float64(bound) * (1 - tolerance))
	hi := sim.Time(float64(bound) * (1 + tolerance))
	for _, s := range samples {
		if !s.CObserved {
			continue
		}
		bc.Samples++
		if s.Delay >= lo && s.Delay <= hi {
			bc.NearBound++
		}
		if s.Delay <= bound && (bc.ClosestBelow == 0 || s.Delay > bc.ClosestBelow) {
			bc.ClosestBelow = s.Delay
		}
		if s.Delay > bound && (bc.ClosestAbove == 0 || s.Delay < bc.ClosestAbove) {
			bc.ClosestAbove = s.Delay
		}
	}
	return bc
}

// Report aggregates all four adequacy dimensions for one executed suite.
type Report struct {
	Transitions TransitionCoverage
	States      StateCoverage
	Phase       PhaseCoverage
	Boundary    BoundaryCoverage
}

// Measure computes the full adequacy report for an executed M-testing
// run. phasePeriod should be the platform period whose alignment matters
// most (typically the CODE(M) task period); bins controls phase
// granularity. A non-positive phasePeriod or bins yields the defined
// empty phase measurement (see Phases); the other three dimensions are
// measured regardless.
func Measure(prog *codegen.Program, tt *fourvar.TransitionTrace, m core.MResult, phasePeriod sim.Time, bins int) Report {
	var stimuli []sim.Time
	for _, s := range m.Samples {
		stimuli = append(stimuli, s.StimulusAt)
	}
	var samples []core.SampleResult
	for _, s := range m.Samples {
		samples = append(samples, s.SampleResult)
	}
	return Report{
		Transitions: Transitions(prog, tt),
		States:      States(prog, tt),
		Phase:       Phases(stimuli, phasePeriod, bins),
		Boundary:    Boundary(samples, m.Requirement.Bound, 0.2),
	}
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transition coverage: %d/%d (%.0f%%)", r.Transitions.Covered, r.Transitions.Total, 100*r.Transitions.Ratio())
	if len(r.Transitions.Uncovered) > 0 {
		fmt.Fprintf(&b, " uncovered: %s", strings.Join(r.Transitions.Uncovered, ", "))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "state coverage:      %d/%d (%.0f%%)", r.States.Covered, r.States.Total, 100*r.States.Ratio())
	if len(r.States.Uncovered) > 0 {
		fmt.Fprintf(&b, " uncovered: %s", strings.Join(r.States.Uncovered, ", "))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "phase coverage:      %.0f%% of %d bins over %v\n", 100*r.Phase.Ratio(), len(r.Phase.Bins), r.Phase.Period)
	fmt.Fprintf(&b, "boundary coverage:   %d/%d samples within %.0f%% of the %v bound",
		r.Boundary.NearBound, r.Boundary.Samples, 100*r.Boundary.Tolerance, r.Boundary.Bound)
	if r.Boundary.ClosestBelow > 0 || r.Boundary.ClosestAbove > 0 {
		fmt.Fprintf(&b, " (closest %v / %v)", r.Boundary.ClosestBelow, r.Boundary.ClosestAbove)
	}
	b.WriteByte('\n')
	return b.String()
}

// TransitionHints explains how to reach each uncovered transition: which
// state to drive the system into and which event or dwell time fires the
// transition. Together with Suggest (phase coverage) it closes the
// systematic-generation loop of the paper's future work: uncovered
// structure maps directly to new test scenarios.
func TransitionHints(prog *codegen.Program, tc TransitionCoverage) []string {
	var out []string
	uncovered := make(map[string]bool, len(tc.Uncovered))
	for _, label := range tc.Uncovered {
		uncovered[label] = true
	}
	for _, t := range prog.Trans {
		if !uncovered[t.Label] {
			continue
		}
		from := prog.States[t.From].Name
		var how string
		switch t.Trig.Kind {
		case statechart.TrigEvent:
			how = fmt.Sprintf("raise %s while in %s", prog.Events[t.Trig.Event], from)
		case statechart.TrigAfter:
			how = fmt.Sprintf("dwell in %s for at least %d ticks", from, t.Trig.N)
		case statechart.TrigAt:
			how = fmt.Sprintf("dwell in %s for exactly %d ticks", from, t.Trig.N)
		case statechart.TrigBefore:
			how = fmt.Sprintf("enter %s (fires within %d ticks of entry)", from, t.Trig.N)
		default:
			how = fmt.Sprintf("reach %s (transition is unguarded by events)", from)
		}
		if t.Guard.Len > 0 {
			how += " with its guard satisfied"
		}
		out = append(out, fmt.Sprintf("%s: %s", t.Label, how))
	}
	sort.Strings(out)
	return out
}

// Suggest proposes additional stimulus instants that target the empty
// phase bins, appended after the existing test case with the given
// spacing. This is the "systematic generation" direction of the paper's
// future work: iterate Measure -> Suggest -> re-run until the phase
// space is covered.
func Suggest(pc PhaseCoverage, after sim.Time, spacing sim.Time) []sim.Time {
	if pc.Period <= 0 || len(pc.Bins) == 0 || spacing <= 0 {
		return nil
	}
	var out []sim.Time
	next := after + spacing
	for _, bin := range pc.EmptyBins() {
		// Target the bin's centre phase.
		phase := sim.Time((int64(bin)*int64(pc.Period) + int64(pc.Period)/2) / int64(len(pc.Bins)))
		base := next - (next % pc.Period) // align, then add the phase
		at := base + phase
		for at <= next {
			at += pc.Period
		}
		out = append(out, at)
		next = at + spacing
	}
	return out
}
