package coverage

import (
	"strings"
	"testing"
	"time"

	"rmtest/internal/codegen"
	"rmtest/internal/core"
	"rmtest/internal/fourvar"
	"rmtest/internal/gpca"
	"rmtest/internal/platform"
	"rmtest/internal/sim"
)

const ms = time.Millisecond

func pumpProgram(t *testing.T) *codegen.Program {
	t.Helper()
	cc, err := gpca.Chart().Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(cc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTransitionCoverageFromTrace(t *testing.T) {
	p := pumpProgram(t)
	tt := fourvar.NewTransitionTrace()
	// Exercise the bolus chain only (indices 0 and 2 in document order).
	tt.Start(0, "Idle->BolusRequested", ms)
	tt.Finish(0, "Idle->BolusRequested", 2*ms, nil)
	tt.Start(2, "BolusRequested->Infusion", 2*ms)
	tt.Finish(2, "BolusRequested->Infusion", 3*ms, nil)
	tc := Transitions(p, tt)
	if tc.Total != 6 || tc.Covered != 2 {
		t.Fatalf("coverage: %+v", tc)
	}
	if tc.Counts["Idle->BolusRequested"] != 1 {
		t.Fatalf("counts: %v", tc.Counts)
	}
	if len(tc.Uncovered) != 4 {
		t.Fatalf("uncovered: %v", tc.Uncovered)
	}
	if r := tc.Ratio(); r < 0.33 || r > 0.34 {
		t.Fatalf("ratio: %v", r)
	}
}

func TestStateCoverage(t *testing.T) {
	p := pumpProgram(t)
	tt := fourvar.NewTransitionTrace()
	sc := States(p, tt)
	// Only the initial state entered.
	if sc.Covered != 1 || sc.Total != 4 {
		t.Fatalf("initial-only coverage: %+v", sc)
	}
	tt.Start(0, "Idle->BolusRequested", ms)
	tt.Finish(0, "Idle->BolusRequested", 2*ms, nil)
	sc = States(p, tt)
	if sc.Covered != 2 {
		t.Fatalf("after one transition: %+v", sc)
	}
	for _, u := range sc.Uncovered {
		if u == "Idle" || u == "BolusRequested" {
			t.Fatalf("covered state listed uncovered: %v", sc.Uncovered)
		}
	}
}

func TestPhaseCoverage(t *testing.T) {
	period := 40 * ms
	// All stimuli at the same phase: 1 bin hit.
	same := Phases([]sim.Time{5 * ms, 45 * ms, 85 * ms}, period, 8)
	if same.Ratio() != 1.0/8 {
		t.Fatalf("same-phase ratio %v", same.Ratio())
	}
	// Spread stimuli: full coverage.
	var spread []sim.Time
	for i := 0; i < 8; i++ {
		spread = append(spread, sim.Time(i)*5*ms+2*ms)
	}
	full := Phases(spread, period, 8)
	if full.Ratio() != 1 {
		t.Fatalf("spread ratio %v bins %v", full.Ratio(), full.Bins)
	}
	if len(full.EmptyBins()) != 0 {
		t.Fatalf("empty bins: %v", full.EmptyBins())
	}
	// Degenerate period.
	if Phases(spread, 0, 8).Ratio() != 0 {
		t.Fatal("zero period should yield zero coverage")
	}
}

func TestBoundaryCoverage(t *testing.T) {
	bound := 100 * ms
	samples := []core.SampleResult{
		{CObserved: true, Delay: 30 * ms},
		{CObserved: true, Delay: 95 * ms},
		{CObserved: true, Delay: 110 * ms},
		{CObserved: false}, // MAX: not counted
	}
	bc := Boundary(samples, bound, 0.2)
	if bc.Samples != 3 || bc.NearBound != 2 {
		t.Fatalf("boundary: %+v", bc)
	}
	if bc.ClosestBelow != 95*ms || bc.ClosestAbove != 110*ms {
		t.Fatalf("closest: %+v", bc)
	}
	if !bc.Adequate() {
		t.Fatal("should be adequate")
	}
	far := Boundary([]core.SampleResult{{CObserved: true, Delay: 10 * ms}}, bound, 0.2)
	if far.Adequate() {
		t.Fatal("far-from-bound suite should be inadequate")
	}
}

func TestMeasureEndToEnd(t *testing.T) {
	// Run a real M-testing pass on scheme 2 and measure adequacy.
	factory := gpca.Factory(func() platform.Scheme { return platform.DefaultScheme2() })
	runner, err := core.NewRunner(factory, gpca.REQ1())
	if err != nil {
		t.Fatal(err)
	}
	gen := core.Generator{N: 6, Start: 50 * ms, Spacing: 4500 * ms, Strategy: core.JitteredSpacing, Seed: 3}
	tcase, err := gen.Generate(gpca.REQ1())
	if err != nil {
		t.Fatal(err)
	}
	// Re-run at M level keeping the system so the transition trace is
	// available.
	sys, err := factory(platform.MLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	for _, at := range tcase.Stimuli {
		sys.Env.PulseAt(at, gpca.SigBolusButton, 1, 0, gpca.ButtonPress)
	}
	sys.Run(tcase.Horizon(gpca.REQ1()))
	mres, err := runner.RunM(tcase)
	if err != nil {
		t.Fatal(err)
	}
	rep := Measure(sys.Program(), sys.TransTrace, mres, 40*ms, 8)
	// The bolus scenario exercises 3 of 6 transitions (request, start,
	// 4000-tick stop) and 3 of 4 states (EmptyAlarm unreachable without
	// the alarm stimulus).
	if rep.Transitions.Covered != 3 {
		t.Fatalf("transitions: %+v", rep.Transitions)
	}
	if rep.States.Covered != 3 {
		t.Fatalf("states: %+v", rep.States)
	}
	if rep.Phase.Ratio() <= 0 {
		t.Fatalf("phase: %+v", rep.Phase)
	}
	s := rep.String()
	for _, want := range []string{"transition coverage: 3/6", "state coverage:      3/4", "EmptyAlarm", "boundary coverage"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSuggestTargetsEmptyBins(t *testing.T) {
	period := 40 * ms
	pc := Phases([]sim.Time{2 * ms, 42 * ms}, period, 4) // only bin 0 hit
	extra := Suggest(pc, 10*time.Second, 5*time.Second)
	if len(extra) != 3 {
		t.Fatalf("suggestions: %v", extra)
	}
	// Each suggestion must land in a previously empty bin.
	after := Phases(append([]sim.Time{2 * ms}, extra...), period, 4)
	if after.Ratio() != 1 {
		t.Fatalf("suggestions did not complete coverage: %v", after.Bins)
	}
	// Suggestions keep the required spacing.
	last := 10 * time.Second
	for _, at := range extra {
		if at-last < 5*time.Second {
			t.Fatalf("spacing violated: %v after %v", at, last)
		}
		last = at
	}
}

func TestSuggestDegenerate(t *testing.T) {
	if Suggest(PhaseCoverage{}, 0, time.Second) != nil {
		t.Fatal("degenerate phase coverage should yield nothing")
	}
	full := Phases([]sim.Time{0, 10 * ms, 20 * ms, 30 * ms}, 40*ms, 4)
	if got := Suggest(full, 0, time.Second); len(got) != 0 {
		t.Fatalf("full coverage should yield nothing: %v", got)
	}
}

func TestTransitionHints(t *testing.T) {
	p := pumpProgram(t)
	tt := fourvar.NewTransitionTrace()
	// Cover only the bolus chain; the alarm transitions stay uncovered.
	tt.Start(0, "Idle->BolusRequested", ms)
	tt.Finish(0, "Idle->BolusRequested", 2*ms, nil)
	tc := Transitions(p, tt)
	hints := TransitionHints(p, tc)
	if len(hints) != len(tc.Uncovered) {
		t.Fatalf("hints=%d uncovered=%d", len(hints), len(tc.Uncovered))
	}
	joined := strings.Join(hints, "\n")
	for _, want := range []string{
		"raise i_EmptyAlarm while in Idle",
		"raise i_ClearAlarm while in EmptyAlarm",
		"dwell in Infusion for exactly 4000 ticks",
		"fires within 100 ticks of entry",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("hints missing %q:\n%s", want, joined)
		}
	}
}

func TestTransitionHintsNoneWhenFullyCovered(t *testing.T) {
	p := pumpProgram(t)
	tt := fourvar.NewTransitionTrace()
	for _, tr := range p.Trans {
		tt.Start(tr.ID, tr.Label, ms)
		tt.Finish(tr.ID, tr.Label, 2*ms, nil)
	}
	tc := Transitions(p, tt)
	if hints := TransitionHints(p, tc); len(hints) != 0 {
		t.Fatalf("hints for full coverage: %v", hints)
	}
}

// TestPhasesDegenerateInputs pins the defined-empty contract: a
// non-positive bin count or period yields a measurement with no bins —
// Ratio 0, no empty bins, nothing for Suggest to target — instead of a
// silently substituted default bin count.
func TestPhasesDegenerateInputs(t *testing.T) {
	stimuli := []sim.Time{5 * ms, 45 * ms, 85 * ms}
	for _, tc := range []struct {
		name   string
		period sim.Time
		bins   int
	}{
		{"zero bins", 40 * ms, 0},
		{"negative bins", 40 * ms, -3},
		{"zero period", 0, 8},
		{"negative period", -40 * ms, 8},
		{"both degenerate", 0, 0},
	} {
		pc := Phases(stimuli, tc.period, tc.bins)
		if len(pc.Bins) != 0 {
			t.Errorf("%s: got %d bins, want none", tc.name, len(pc.Bins))
		}
		if pc.Ratio() != 0 {
			t.Errorf("%s: ratio %v, want 0", tc.name, pc.Ratio())
		}
		if eb := pc.EmptyBins(); eb != nil {
			t.Errorf("%s: empty bins %v, want none", tc.name, eb)
		}
		if sug := Suggest(pc, 0, time.Second); sug != nil {
			t.Errorf("%s: suggested %v, want nothing", tc.name, sug)
		}
		if pc.Period != tc.period {
			t.Errorf("%s: period rewritten to %v", tc.name, pc.Period)
		}
	}
}

// TestMeasureDegeneratePhase: Measure with a degenerate phase
// configuration still measures the other three dimensions and returns
// the defined empty phase measurement.
func TestMeasureDegeneratePhase(t *testing.T) {
	prog := pumpProgram(t)
	tt := fourvar.NewTransitionTrace()
	tt.Start(0, "t0", 0)
	tt.Finish(0, "t0", ms, nil)
	m := core.MResult{Program: prog, TransTrace: tt}
	for _, rep := range []Report{
		Measure(prog, tt, m, 0, 8),
		Measure(prog, tt, m, 40*ms, 0),
	} {
		if len(rep.Phase.Bins) != 0 || rep.Phase.Ratio() != 0 {
			t.Errorf("degenerate phase config measured bins %v", rep.Phase.Bins)
		}
		if rep.Transitions.Covered != 1 {
			t.Errorf("transition coverage lost: %+v", rep.Transitions)
		}
		if rep.States.Covered == 0 {
			t.Error("state coverage lost")
		}
	}
}
