package rmtest_test

// Cross-checks of the platform static-analysis layer (internal/schedlint)
// against the simulator: the blocking-inclusive response-time bounds must
// dominate what the scheduler trace measures on the Table I platforms, at
// every campaign worker count, and the scheme-3 interference platform's
// findings are pinned as a regression.

import (
	"reflect"
	"testing"
	"time"

	"rmtest"
	"rmtest/internal/campaign"
	"rmtest/internal/core"
	"rmtest/internal/gpca"
	"rmtest/internal/platform"
	"rmtest/internal/sim"
)

// pipelineMeasurement is one scheme run's trace extraction.
type pipelineMeasurement struct {
	Resp  map[string]sim.Time
	Block map[string]sim.Time
}

// measurePipelines simulates the scheme-2 and scheme-3 pipelines under
// the Table I stimuli on a campaign pool of the given width and extracts
// each task's worst observed response and per-release blocking from the
// scheduler trace.
func measurePipelines(t *testing.T, workers int) []pipelineMeasurement {
	t.Helper()
	req := gpca.REQ1()
	gen := core.Generator{
		N: 2, Start: 50 * time.Millisecond,
		Spacing: 4500 * time.Millisecond, Strategy: core.JitteredSpacing,
		Jitter: 200 * time.Millisecond, Seed: 7,
	}
	tc, err := gen.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	units := []func() platform.Scheme{
		func() platform.Scheme { return platform.DefaultScheme2() },
		func() platform.Scheme { return platform.DefaultScheme3() },
	}
	outs := campaign.Map(campaign.Config{Workers: workers, Seed: 7}, len(units),
		func(run campaign.Run) (pipelineMeasurement, error) {
			cfg := gpca.PlatformConfig()
			// The default 4096-record ring would wrap over a multi-second
			// horizon; keep the whole trace.
			cfg.RTOS.TraceCapacity = 1 << 17
			sys, err := platform.NewSystem(cfg, units[run.Index](), platform.RLevel)
			if err != nil {
				return pipelineMeasurement{}, err
			}
			for _, at := range tc.Stimuli {
				sys.Env.PulseAt(at, req.Stimulus.Signal, 1, 0, req.Stimulus.Width)
			}
			sys.Run(tc.Horizon(req))
			recs := sys.Sched.Trace().Records()
			m := pipelineMeasurement{
				Resp:  rmtest.MeasuredResponses(recs),
				Block: rmtest.MeasuredBlocking(recs),
			}
			sys.Shutdown()
			return m, nil
		})
	vals, err := campaign.Values(outs)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestPlatformBlockingDominatesMeasured is the platform layer's
// dominance cross-check, in the mold of TestStaticWCETDominatesMeasured:
// on the scheme-2 and scheme-3 Table I platforms, every task the static
// analysis calls schedulable must measure a response no worse than its
// blocking-inclusive bound and blocking no worse than its B_i term — and
// the measured values must be identical at every campaign worker count.
func TestPlatformBlockingDominatesMeasured(t *testing.T) {
	measured := measurePipelines(t, 1)
	for _, workers := range []int{2, 4} {
		if again := measurePipelines(t, workers); !reflect.DeepEqual(measured, again) {
			t.Fatalf("measured trace extraction differs between workers=1 and workers=%d", workers)
		}
	}

	s3 := rmtest.Scheme3().(*rmtest.Scheme3Config)
	analyses := make([]rmtest.SchemeAnalysis, 2)
	var err error
	if analyses[0], err = rmtest.AnalyzePipelineStatic(rmtest.Scheme2().(*rmtest.Scheme2Config), nil); err != nil {
		t.Fatal(err)
	}
	if analyses[1], err = rmtest.AnalyzePipelineStatic(&s3.Scheme2, s3.Interference); err != nil {
		t.Fatal(err)
	}

	schemes := []string{"scheme2", "scheme3"}
	for i, an := range analyses {
		if an.Platform == nil {
			t.Fatalf("%s: static pipeline did not produce a platform report", schemes[i])
		}
		checked := 0
		for _, r := range an.Platform.Tasks {
			if !r.Schedulable {
				continue // no meaningful bound for starved tasks
			}
			name := r.Task.Name
			mresp, ok := measured[i].Resp[name]
			if !ok {
				t.Errorf("%s: schedulable task %q completed no release in the trace", schemes[i], name)
				continue
			}
			checked++
			if mresp > r.Response {
				t.Errorf("%s: task %q measured response %v > static bound %v",
					schemes[i], name, mresp, r.Response)
			}
			if mb := measured[i].Block[name]; mb > r.Task.Blocking {
				t.Errorf("%s: task %q measured blocking %v > static B=%v",
					schemes[i], name, mb, r.Task.Blocking)
			}
		}
		if checked == 0 {
			t.Errorf("%s: dominance check covered no task", schemes[i])
		}
	}
}

// TestScheme2PlatformRegression pins the scheme-2 platform report: no
// fatal findings, every pipeline task schedulable, zero blocking (the
// pipeline is wait-free by construction), and the conservative inQ
// capacity warning.
func TestScheme2PlatformRegression(t *testing.T) {
	an, err := rmtest.AnalyzePipelineStatic(rmtest.Scheme2().(*rmtest.Scheme2Config), nil)
	if err != nil {
		t.Fatal(err)
	}
	plat := an.Platform
	if n := len(plat.Fatal()); n != 0 {
		t.Fatalf("scheme2 platform: want 0 fatal findings, got %d:\n%s", n, plat)
	}
	for _, r := range plat.Tasks {
		if !r.Schedulable {
			t.Errorf("scheme2 task %q not schedulable: R=%v", r.Task.Name, r.Response)
		}
		if r.Task.Blocking != 0 {
			t.Errorf("scheme2 task %q has blocking %v, want 0 (TrySend/TryRecv only)",
				r.Task.Name, r.Task.Blocking)
		}
	}
	var codes []string
	for _, f := range plat.Findings {
		codes = append(codes, f.Code+":"+f.Where)
	}
	if want := []string{"queue-capacity:inQ"}; !reflect.DeepEqual(codes, want) {
		t.Errorf("scheme2 findings = %v, want %v", codes, want)
	}
	if len(plat.Queues) != 2 || plat.Queues[1].Name != "outQ" || plat.Queues[1].Required < 0 {
		t.Errorf("outQ should have a finite bound, got %+v", plat.Queues)
	}
}

// TestScheme3PlatformRegression pins the scheme-3 interference
// platform's findings: the netdrv bursts statically starve every task
// below priority 4, which surfaces as blocking-unschedulable warnings
// for the whole pipeline (and logger/housekeeping) plus unbounded queue
// backlogs — the static anticipation of Table I's scheme-3 violations.
func TestScheme3PlatformRegression(t *testing.T) {
	s3 := rmtest.Scheme3().(*rmtest.Scheme3Config)
	an, err := rmtest.AnalyzePipelineStatic(&s3.Scheme2, s3.Interference)
	if err != nil {
		t.Fatal(err)
	}
	plat := an.Platform
	if n := len(plat.Fatal()); n != 0 {
		t.Fatalf("scheme3 platform: want 0 fatal findings, got %d:\n%s", n, plat)
	}
	got := map[string]bool{}
	for _, f := range plat.Findings {
		got[f.Code+":"+f.Where] = true
	}
	want := []string{
		"blocking-unschedulable:sense",
		"blocking-unschedulable:codeM",
		"blocking-unschedulable:actuate",
		"blocking-unschedulable:logger",
		"blocking-unschedulable:housekeeping",
		"queue-capacity:inQ",
		"queue-capacity:outQ",
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("scheme3 findings missing %q:\n%s", w, plat)
		}
	}
	if len(plat.Findings) != len(want) {
		t.Errorf("scheme3 finding count = %d, want %d:\n%s", len(plat.Findings), len(want), plat)
	}
	sched := map[string]bool{}
	for _, r := range plat.Tasks {
		sched[r.Task.Name] = r.Schedulable
	}
	if !sched["netdrv"] {
		t.Error("netdrv (highest priority) must be schedulable")
	}
	for _, name := range []string{"sense", "codeM", "actuate"} {
		if sched[name] {
			t.Errorf("pipeline task %q should be statically unschedulable under netdrv", name)
		}
	}
	// The end-to-end prediction agrees: scheme 3 cannot meet REQ1.
	if an.Bound >= 0 || an.PredictConforms {
		t.Errorf("scheme3 prediction = (bound %v, conforms %v), want unschedulable", an.Bound, an.PredictConforms)
	}
}
