package rmtest_test

// End-to-end checks of the fault-injection subsystem: the
// fault-attribution sweep against its golden CSV at several worker
// counts (online and post-hoc), the five-class attribution acceptance,
// panic containment and accounting in faulted campaigns, the
// deadline-boundary equivalence of the online monitor under an injected
// latency, scratch hygiene after an aborted faulted run, and the static
// blocking dominance under an ISR storm.

import (
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rmtest"
	"rmtest/internal/campaign"
	"rmtest/internal/core"
	"rmtest/internal/faults"
	"rmtest/internal/gpca"
	"rmtest/internal/monitor"
	"rmtest/internal/platform"
	"rmtest/internal/sim"
)

// TestFaultSweepMatchesGolden pins the fault-attribution sweep byte for
// byte: the rendered CSV must equal testdata/faults_seed42.csv at every
// worker count, with the post-hoc evaluator and with the online monitor.
func TestFaultSweepMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/faults_seed42.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, online := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4} {
			res, err := rmtest.FaultSweep(rmtest.FaultSweepOptions{
				Samples: 10, Seed: 42, Workers: workers, Online: online,
			})
			if err != nil {
				t.Fatalf("workers=%d online=%v: %v", workers, online, err)
			}
			if got := rmtest.RenderFaultCSV(res.Attributions); got != string(golden) {
				t.Errorf("workers=%d online=%v: fault CSV deviates from golden:\n%s", workers, online, got)
			}
		}
	}
}

// TestFaultAttributionAcceptance is the subsystem's acceptance check:
// for each of the five headline fault classes, M-testing must blame the
// delay segment the class is designed to damage.
func TestFaultAttributionAcceptance(t *testing.T) {
	res, err := rmtest.FaultSweep(rmtest.FaultSweepOptions{Samples: 10, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	byPlan := map[string]rmtest.FaultAttribution{}
	for _, a := range res.Attributions {
		byPlan[a.Plan] = a
	}
	for _, plan := range []string{
		"sensor-latency", "actuator-latency", "task-overrun", "queue-drop", "clock-drift",
	} {
		a, ok := byPlan[plan]
		if !ok {
			t.Errorf("catalogue has no plan %q", plan)
			continue
		}
		if !a.Match {
			t.Errorf("%s: attributed %v, expected %v", plan, a.Attributed, a.Expected)
		}
		if a.Fail+a.Max == 0 {
			t.Errorf("%s: fault produced no violation to attribute", plan)
		}
	}
	// The baseline plan must be clean and the storm is the negative
	// control: diffuse damage, no single-segment attribution.
	if a := byPlan["baseline"]; a.Fail+a.Max != 0 || a.Attributed != rmtest.SegNone {
		t.Errorf("baseline not clean: %+v", a)
	}
	if a := byPlan["isr-storm"]; a.Attributed != rmtest.SegNone {
		t.Errorf("isr-storm attributed %v, want none (negative control)", a.Attributed)
	}
}

// TestFaultedCampaignPanicAccounting pins the containment contract for
// mis-targeted plans (satellite S4): a fault plan that panics in the
// Prepare hook fails exactly its own run, the campaign completes, the
// worker's scratch is discarded, and no task goroutines leak.
func TestFaultedCampaignPanicAccounting(t *testing.T) {
	before := runtime.NumGoroutine()
	req := gpca.REQ1()
	gen := core.Generator{
		N: 2, Start: 50 * time.Millisecond,
		Spacing: 4500 * time.Millisecond, Strategy: core.JitteredSpacing,
		Jitter: 200 * time.Millisecond, Seed: 42,
	}
	tc, err := gen.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := gpca.Precompile()
	if err != nil {
		t.Fatal(err)
	}
	good := faults.Plan{Name: "ok", Faults: []faults.Fault{
		{Class: faults.ActuatorLatency, Target: "pump_motor", Duration: sim.Time(time.Hour), Max: 10 * time.Millisecond},
	}}
	bad := faults.Plan{Name: "bad", Faults: []faults.Fault{
		{Class: faults.SensorStuck, Target: "no-such-sensor", Duration: sim.Time(time.Hour)},
	}}
	plans := []faults.Plan{good, good, bad, good, good}

	var mu sync.Mutex
	var lastDone, scratches int
	maxDone := -1
	outs := campaign.MapScratch(
		campaign.Config{Workers: 2, Seed: 42, OnProgress: func(p campaign.Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Done < maxDone {
				t.Errorf("progress went backwards: %d after %d", p.Done, maxDone)
			}
			maxDone = p.Done
			lastDone = p.Done
		}},
		len(plans),
		func() *platform.Scratch { mu.Lock(); scratches++; mu.Unlock(); return &platform.Scratch{} },
		func(run campaign.Run, sc *platform.Scratch) (core.MResult, error) {
			factory := gpca.FactoryPrebuilt(pb, func() platform.Scheme { return platform.DefaultScheme2() }, sc)
			runner, err := core.NewRunner(factory, req)
			if err != nil {
				return core.MResult{}, err
			}
			runner.Prepare = faults.Prepare(plans[run.Index], run.Seed)
			return runner.RunM(tc)
		})

	failed := 0
	for i, o := range outs {
		if o.Failed() {
			failed++
			if i != 2 {
				t.Errorf("run %d failed, only the bad plan (index 2) should: %v", i, o.Err)
			}
			if !strings.Contains(o.Err.Error(), `unknown sensor "no-such-sensor"`) {
				t.Errorf("failure does not carry the Apply error: %v", o.Err)
			}
		} else if len(o.Value.Samples) != 2 {
			t.Errorf("run %d: %d samples, want 2", i, len(o.Value.Samples))
		}
	}
	if failed != 1 {
		t.Fatalf("failed runs = %d, want exactly 1", failed)
	}
	if lastDone != len(plans) {
		t.Fatalf("final progress Done = %d, want %d (a panicking run still counts as done)", lastDone, len(plans))
	}
	// The panicking run's scratch is discarded, so the pool must have
	// built at least one scratch beyond the two workers'.
	if scratches < 3 {
		t.Errorf("scratch factory ran %d times, want >= 3 (discard on panic)", scratches)
	}
	// All task goroutines must wind down, including the half-built
	// system the panic unwound through.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

// boundaryResult runs the single-stimulus boundary scenario with the
// given injected actuator latency, on the post-hoc evaluator or the
// online monitor, and returns the sole sample.
func boundaryResult(t *testing.T, tc core.TestCase, req core.Requirement, extra sim.Time, online bool) core.MSample {
	t.Helper()
	factory := gpca.Factory(func() platform.Scheme { return platform.DefaultScheme2() })
	plan := faults.Plan{Name: "boundary", Faults: []faults.Fault{
		{Class: faults.ActuatorLatency, Target: "pump_motor", Duration: sim.Time(time.Hour), Max: extra},
	}}
	var mr core.MResult
	if online {
		runner, err := monitor.NewRunner(factory, req)
		if err != nil {
			t.Fatal(err)
		}
		if extra > 0 {
			runner.Post.Prepare = faults.Prepare(plan, 1)
		}
		mr, _, err = runner.RunM(tc)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		runner, err := core.NewRunner(factory, req)
		if err != nil {
			t.Fatal(err)
		}
		if extra > 0 {
			runner.Prepare = faults.Prepare(plan, 1)
		}
		var err2 error
		mr, err2 = runner.RunM(tc)
		if err2 != nil {
			t.Fatal(err2)
		}
	}
	if len(mr.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(mr.Samples))
	}
	return mr.Samples[0]
}

// TestFaultedDeadlineBoundaryOnlineEquivalence pins the watchdog-epsilon
// fix (satellite S3): an injected latency placing the response exactly
// at deadline + timeout must yield the same verdict online and post-hoc
// (Fail, not MAX), and one nanosecond past the timeout must flip both
// paths to MAX together.
func TestFaultedDeadlineBoundaryOnlineEquivalence(t *testing.T) {
	req := gpca.REQ1()
	gen := core.Generator{N: 1, Start: 50 * time.Millisecond, Spacing: time.Second, Seed: 1}
	tc, err := gen.Generate(req)
	if err != nil {
		t.Fatal(err)
	}

	// Measure the unfaulted response delay, then craft the latency that
	// lands the c-event exactly at m + timeout.
	base := boundaryResult(t, tc, req, 0, false)
	if base.Verdict != core.Pass {
		t.Fatalf("baseline verdict %v, want Pass", base.Verdict)
	}
	exact := req.EffectiveTimeout() - base.Delay
	if exact <= 0 {
		t.Fatalf("baseline delay %v already beyond the timeout", base.Delay)
	}

	for _, c := range []struct {
		name  string
		extra sim.Time
		want  core.Verdict
	}{
		{"exactly at timeout", exact, core.Fail},
		{"one ns past timeout", exact + 1, core.Max},
	} {
		post := boundaryResult(t, tc, req, c.extra, false)
		online := boundaryResult(t, tc, req, c.extra, true)
		if post.Verdict != c.want {
			t.Errorf("%s: post-hoc verdict %v, want %v (delay %v)", c.name, post.Verdict, c.want, post.Delay)
		}
		if online.Verdict != post.Verdict || online.Delay != post.Delay {
			t.Errorf("%s: online (%v, %v) deviates from post-hoc (%v, %v)",
				c.name, online.Verdict, online.Delay, post.Verdict, post.Delay)
		}
		if c.want == core.Fail && post.Delay != req.EffectiveTimeout() {
			t.Errorf("%s: delay %v, want exactly %v", c.name, post.Delay, req.EffectiveTimeout())
		}
	}
}

// TestScratchCleanAfterAbortedFaultedRun pins kernel-reset hygiene at
// the platform layer (satellite S1): a faulted run abandoned in the
// middle of its fault windows must leave its worker scratch reusable —
// the next, unfaulted run on the same scratch measures exactly what a
// fresh system measures.
func TestScratchCleanAfterAbortedFaultedRun(t *testing.T) {
	req := gpca.REQ1()
	gen := core.Generator{
		N: 2, Start: 50 * time.Millisecond,
		Spacing: 4500 * time.Millisecond, Strategy: core.JitteredSpacing,
		Jitter: 200 * time.Millisecond, Seed: 42,
	}
	tc, err := gen.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := gpca.Precompile()
	if err != nil {
		t.Fatal(err)
	}
	scheme := func() platform.Scheme { return platform.DefaultScheme2() }

	// Faulted run with windows and timers far beyond the abort horizon:
	// a latch scheduled at 2s, a drifted sampling clock, a storm ticking
	// to the end of time.
	sc := &platform.Scratch{}
	runner, err := core.NewRunner(gpca.FactoryPrebuilt(pb, scheme, sc), req)
	if err != nil {
		t.Fatal(err)
	}
	runner.Prepare = faults.Prepare(faults.Plan{Name: "mid-window", Faults: []faults.Fault{
		{Class: faults.SensorStuck, Target: "bolus_button", Start: 2 * sim.Time(time.Second), Duration: sim.Time(time.Hour), Value: 1},
		{Class: faults.ClockDrift, Target: "bolus_button", Start: 0, Duration: sim.Time(time.Hour), PPM: 500_000},
		{Class: faults.ISRStorm, Duration: sim.Time(time.Hour), Period: 2 * time.Millisecond, Cost: 200 * time.Microsecond},
	}}, 7)
	sys, err := runner.Setup(platform.MLevel, tc)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(sim.Time(time.Second)) // abort mid-window: stuck latch still pending
	sys.Shutdown()

	// Unfaulted run on the recycled scratch vs a freshly allocated system.
	recycled, err := core.NewRunner(gpca.FactoryPrebuilt(pb, scheme, sc), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recycled.RunM(tc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewRunner(gpca.FactoryPrebuilt(pb, scheme, nil), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RunM(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Samples, want.Samples) {
		t.Fatalf("recycled scratch measured differently after an aborted faulted run:\ngot  %+v\nwant %+v", got.Samples, want.Samples)
	}
}

// TestStaticBlockingDominatesUnderISRStorm extends the platform
// dominance cross-check into the fault layer (satellite S5): an ISR
// storm steals CPU as interference, not priority-inversion blocking, so
// the scheme-2 pipeline's measured per-release blocking must stay within
// the static B_i terms (zero) even while the storm runs. Response-time
// bounds are out of scope — the static model does not know about ISRs.
func TestStaticBlockingDominatesUnderISRStorm(t *testing.T) {
	req := gpca.REQ1()
	gen := core.Generator{
		N: 2, Start: 50 * time.Millisecond,
		Spacing: 4500 * time.Millisecond, Strategy: core.JitteredSpacing,
		Jitter: 200 * time.Millisecond, Seed: 7,
	}
	tc, err := gen.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpca.PlatformConfig()
	cfg.RTOS.TraceCapacity = 1 << 17
	sys, err := platform.NewSystem(cfg, platform.DefaultScheme2(), platform.RLevel)
	if err != nil {
		t.Fatal(err)
	}
	horizon := tc.Horizon(req)
	err = faults.Plan{Name: "storm", Faults: []faults.Fault{
		{Class: faults.ISRStorm, Duration: horizon, Period: 2 * time.Millisecond, Cost: 1800 * time.Microsecond},
	}}.Apply(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range tc.Stimuli {
		sys.Env.PulseAt(at, req.Stimulus.Signal, 1, 0, req.Stimulus.Width)
	}
	sys.Run(horizon)
	if sys.Sched.StormISRs() == 0 {
		t.Fatal("storm never fired")
	}
	blocking := rmtest.MeasuredBlocking(sys.Sched.Trace().Records())
	sys.Shutdown()

	an, err := rmtest.AnalyzePipelineStatic(rmtest.Scheme2().(*rmtest.Scheme2Config), nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range an.Platform.Tasks {
		if !r.Schedulable {
			continue
		}
		checked++
		if mb := blocking[r.Task.Name]; mb > r.Task.Blocking {
			t.Errorf("task %q measured blocking %v under storm > static B=%v",
				r.Task.Name, mb, r.Task.Blocking)
		}
	}
	if checked == 0 {
		t.Fatal("dominance check covered no task")
	}
}
