// Command benchcmp records and compares benchmark trajectories.
//
// It has two modes:
//
//	go test -bench ... -benchmem -run XXX . | go run ./cmd/benchcmp -record BENCH_kernel.json
//	go run ./cmd/benchcmp BENCH_old.json BENCH_new.json
//
// Record mode parses `go test -bench` text output from stdin into a
// stable JSON trajectory file. Compare mode prints per-benchmark deltas
// (benchstat-style, without the statistics) and exits non-zero when a
// regression exceeds the thresholds. A benchmark present in the
// baseline but missing from the current run is warned about on stderr
// and skipped — renaming or retiring benchmarks never fails the gate. Because ns/op is host-dependent
// while allocs/op is deterministic, the default policy fails only on
// allocation regressions; pass -max-ns-regress to also gate on time and
// -max-metric-regress to gate on custom b.ReportMetric counters (which
// are deterministic too). With -markdown the comparison renders as a
// GitHub-flavoured table, ready for a CI job summary
// ($GITHUB_STEP_SUMMARY).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	Name     string             `json:"name"`
	N        int64              `json:"n"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   float64            `json:"b_per_op,omitempty"`
	AllocsOp float64            `json:"allocs_per_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// File is the trajectory file layout.
type File struct {
	// Note describes what the numbers are a baseline of.
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkKernelScheduleFire-8   5000000   250.3 ns/op   16 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBench(r *bufio.Scanner) ([]Result, error) {
	var out []Result
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		n, _ := strconv.ParseInt(m[2], 10, 64)
		res := Result{Name: m[1], N: n}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad value %q in %q", fields[i], r.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BPerOp = val
			case "allocs/op":
				res.AllocsOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = val
			}
		}
		out = append(out, res)
	}
	return out, r.Err()
}

func record(path, note string) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parseBench(sc)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchcmp: no benchmark lines on stdin")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	data, err := json.MarshalIndent(File{Note: note, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %v", path, err)
	}
	out := make(map[string]Result, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// delta returns the relative change new-vs-old in percent; +x%% is a
// regression for cost metrics.
func delta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 100
	}
	return (newV - oldV) / oldV * 100
}

// compareOpts bundles the comparison policy: per-unit regression
// thresholds in percent (negative disables gating on that unit) and the
// output format.
type compareOpts struct {
	maxAllocRegress  float64
	maxNsRegress     float64
	maxMetricRegress float64
	markdown         bool
}

// row is one rendered comparison line.
type row struct {
	name, unit string
	o, n       float64
	oldMissing bool
	regressed  bool
}

func (r row) mark() string {
	if r.regressed {
		return "REGRESSION"
	}
	return ""
}

func compare(oldPath, newPath string, opts compareOpts) (failed bool, err error) {
	oldR, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newR, err := load(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(newR))
	for name := range newR {
		names = append(names, name)
	}
	sort.Strings(names)
	// A benchmark present in the baseline but absent from the current
	// run is a warning, never a gate failure: adding, renaming or
	// retiring benchmarks must not break the CI comparison. The warning
	// keeps the skip visible so a silently-vanished benchmark is still
	// noticed in the logs.
	missing := make([]string, 0)
	for name := range oldR {
		if _, ok := newR[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchcmp: warning: baseline benchmark %s missing from current run; skipping\n", name)
	}
	var rows []row
	for _, name := range names {
		n := newR[name]
		o, ok := oldR[name]
		if !ok {
			rows = append(rows, row{name: name, unit: "ns/op", n: n.NsPerOp, oldMissing: true})
			continue
		}
		units := []struct {
			unit     string
			o, n     float64
			maxDelta float64 // <0 disables gating
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp, opts.maxNsRegress},
			{"B/op", o.BPerOp, n.BPerOp, -1},
			{"allocs/op", o.AllocsOp, n.AllocsOp, opts.maxAllocRegress},
		}
		// Custom metrics (b.ReportMetric): compared whenever both sides
		// carry the metric, gated by -max-metric-regress.
		var metricUnits []string
		for unit := range n.Metrics {
			if _, both := o.Metrics[unit]; both {
				metricUnits = append(metricUnits, unit)
			}
		}
		sort.Strings(metricUnits)
		for _, unit := range metricUnits {
			units = append(units, struct {
				unit     string
				o, n     float64
				maxDelta float64
			}{unit, o.Metrics[unit], n.Metrics[unit], opts.maxMetricRegress})
		}
		for _, u := range units {
			d := delta(u.o, u.n)
			r := row{name: name, unit: u.unit, o: u.o, n: u.n}
			if u.maxDelta >= 0 && d > u.maxDelta {
				r.regressed = true
				failed = true
			}
			rows = append(rows, r)
		}
	}
	if opts.markdown {
		renderMarkdown(os.Stdout, rows)
	} else {
		renderText(os.Stdout, rows)
	}
	return failed, nil
}

func renderText(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-60s %14s %14s %9s\n", "benchmark", "old", "new", "delta")
	for _, r := range rows {
		if r.oldMissing {
			fmt.Fprintf(w, "%-60s %14s %14.4g %9s\n", r.name+" ["+r.unit+"]", "-", r.n, "new")
			continue
		}
		mark := ""
		if r.regressed {
			mark = "  " + r.mark()
		}
		fmt.Fprintf(w, "%-60s %14.4g %14.4g %+8.1f%%%s\n",
			r.name+" ["+r.unit+"]", r.o, r.n, delta(r.o, r.n), mark)
	}
}

// renderMarkdown emits the same comparison as a GitHub-flavoured table
// for CI job summaries.
func renderMarkdown(w io.Writer, rows []row) {
	fmt.Fprintln(w, "| benchmark | unit | old | new | delta | |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")
	for _, r := range rows {
		if r.oldMissing {
			fmt.Fprintf(w, "| %s | %s | - | %.4g | new | |\n", r.name, r.unit, r.n)
			continue
		}
		mark := ""
		if r.regressed {
			mark = "**" + r.mark() + "**"
		}
		fmt.Fprintf(w, "| %s | %s | %.4g | %.4g | %+.1f%% | %s |\n",
			r.name, r.unit, r.o, r.n, delta(r.o, r.n), mark)
	}
}

func main() {
	recordPath := flag.String("record", "", "parse `go test -bench` output from stdin and write this JSON file")
	note := flag.String("note", "", "note stored in the recorded file")
	maxAllocRegress := flag.Float64("max-alloc-regress", 5, "fail when allocs/op regresses more than this percentage (negative disables)")
	maxNsRegress := flag.Float64("max-ns-regress", -1, "fail when ns/op regresses more than this percentage (negative disables; host-dependent)")
	maxMetricRegress := flag.Float64("max-metric-regress", 5, "fail when a custom b.ReportMetric unit regresses more than this percentage (negative disables)")
	markdown := flag.Bool("markdown", false, "render the comparison as a GitHub-flavoured markdown table (for CI job summaries)")
	flag.Parse()

	if *recordPath != "" {
		if err := record(*recordPath, *note); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -record out.json < bench.txt | benchcmp old.json new.json")
		os.Exit(2)
	}
	failed, err := compare(flag.Arg(0), flag.Arg(1), compareOpts{
		maxAllocRegress:  *maxAllocRegress,
		maxNsRegress:     *maxNsRegress,
		maxMetricRegress: *maxMetricRegress,
		markdown:         *markdown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
