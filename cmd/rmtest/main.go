// Command rmtest drives the full layered flow for one requirement on one
// implementation scheme: model-level verification, R-testing, and — on
// violation — M-testing with delay-segment diagnosis.
//
// Usage:
//
//	rmtest [-req REQ1|REQ2|REQ3] [-scheme 1|2|3] [-n samples] [-seed n] [-force-m] [-online] [-faults] [-cache] [-prefix-share] [-pprof prefix]
//	rmtest lint [-chart gpca|gpca-extended|railcrossing] [-json] [-rta] [-platform scheme2|scheme3]
//	rmtest gen [-budget n] [-target ratio] [-seed n] [-workers n] [-online] [-csv] [-cache] [-prefix-share] [-pprof prefix]
//
// With -faults the command runs the fault-attribution experiment
// instead of the single R-M flow: the REQ1 bolus scenario on scheme2,
// once per catalogue fault plan, printing the attribution table that
// checks M-testing blames each injected fault's expected delay segment
// (-n, -seed and -online compose with it).
//
// The lint subcommand runs the static-analysis layer on a shipped chart:
// model-level findings (reachability, guard determinism, variable usage,
// temporal sanity), bytecode-level checks (stack discipline, division by
// zero) and static WCET bounds. With -platform it additionally runs the
// platform static analyzer on the named scheme's task/queue
// configuration: lock-order cycles, unbounded priority inversion,
// blocking terms under priority inheritance folded into response-time
// bounds, and queue-capacity sufficiency. It exits nonzero when any
// fatal finding — chart or platform — is present, so it can gate CI;
// -json emits one machine-readable document covering both layers.
//
// The gen subcommand runs the test-case generation pipeline on the GPCA
// and rail-crossing charts: the coverage-directed generator extends a
// seeded schedule with adequacy feedback on scheme2, the falsification
// search hill-climbs stimulus instants toward the deadline on scheme3,
// and any violating schedule is delta-debugged down to a minimal
// counterexample. Suites are reproducible from -seed and byte-identical
// for any -workers value, with or without -online.
//
// -cache (on by default for gen and -faults) memoises candidate
// evaluations by content fingerprint; outputs are byte-identical either
// way, and cache statistics go to stderr. -prefix-share evaluates
// candidate batches through the prefix-sharing snapshot/resume engine —
// runs sharing a stimulus prefix simulate it once and resume per branch
// from a snapshot; outputs are byte-identical either way and sharing
// statistics go to stderr. -pprof PREFIX writes PREFIX.cpu.pprof and
// PREFIX.heap.pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rmtest"
	"rmtest/internal/core"
	"rmtest/internal/gpca"
	"rmtest/internal/platform"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		runLint(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		runGen(os.Args[2:])
		return
	}
	reqName := flag.String("req", "REQ1", "requirement: REQ1, REQ2 or REQ3")
	schemeNo := flag.Int("scheme", 3, "implementation scheme (1, 2 or 3)")
	n := flag.Int("n", 10, "number of test samples")
	seed := flag.Uint64("seed", 42, "stimulus jitter seed")
	forceM := flag.Bool("force-m", false, "run M-testing even when R-testing passes")
	cover := flag.Bool("coverage", false, "measure test adequacy and suggest extra stimuli")
	rtaFlag := flag.Bool("rta", false, "print the analytic response-time prediction for the scheme")
	online := flag.Bool("online", false, "evaluate verdicts with the streaming monitor (early termination); verdicts are identical, monitor stats are printed")
	faultsFlag := flag.Bool("faults", false, "run the fault-attribution experiment (REQ1 on scheme2, one run per catalogue fault plan)")
	cacheFlag := flag.Bool("cache", true, "memoise -faults evaluations by content fingerprint; output is byte-identical either way")
	cacheCap := flag.Int("cache-cap", 0, "evaluation-cache capacity in entries (0 = default 4096)")
	prefixFlag := flag.Bool("prefix-share", false, "evaluate -faults runs through the prefix-sharing snapshot/resume engine; output is byte-identical either way, stats go to stderr")
	pprofPrefix := flag.String("pprof", "", "write PREFIX.cpu.pprof and PREFIX.heap.pprof profiles of the run")
	flag.Parse()

	stopProfiles := startProfiles(*pprofPrefix)
	defer stopProfiles()

	if *faultsFlag {
		var cache *rmtest.EvalCache
		if *cacheFlag {
			cache = rmtest.NewEvalCache(*cacheCap)
		}
		var sink *rmtest.PrefixStatsSink
		if *prefixFlag {
			sink = &rmtest.PrefixStatsSink{}
		}
		res, err := rmtest.FaultSweep(rmtest.FaultSweepOptions{
			Samples: *n, Seed: *seed, Online: *online, Cache: cache,
			PrefixShare: *prefixFlag, PrefixStats: sink,
		})
		if err != nil {
			fail("faults: %v", err)
		}
		fmt.Println("== fault attribution (REQ1, scheme2) ==")
		fmt.Print(rmtest.RenderFaultTable(res.Attributions))
		if *online {
			fmt.Println("\n== online monitor ==")
			fmt.Print(rmtest.RenderMonitorStats(res.Stats))
		}
		if cache != nil {
			fmt.Fprint(os.Stderr, rmtest.RenderCacheStats(cache.Stats()))
		}
		if sink != nil {
			fmt.Fprintf(os.Stderr, "prefix sharing: %s\n", sink.Stats())
		}
		return
	}

	var req rmtest.Requirement
	switch *reqName {
	case "REQ1":
		req = gpca.REQ1()
	case "REQ2":
		req = gpca.REQ2()
	case "REQ3":
		req = gpca.REQ3()
	default:
		fail("unknown requirement %q", *reqName)
	}
	var mk func() platform.Scheme
	switch *schemeNo {
	case 1:
		mk = func() platform.Scheme { return platform.DefaultScheme1() }
	case 2:
		mk = func() platform.Scheme { return platform.DefaultScheme2() }
	case 3:
		mk = func() platform.Scheme { return platform.DefaultScheme3() }
	default:
		fail("scheme must be 1, 2 or 3")
	}

	fmt.Printf("== requirement ==\n%s\n\n", req)

	// Phase 0: model-level verification (REQ1 only has a chart-level
	// form; for the others we verify the alarm responses).
	fmt.Println("== model-level verification (Design Verifier step) ==")
	prop := modelProp(*reqName)
	res, err := rmtest.VerifyResponse(rmtest.PumpChart(), prop, rmtest.VerifyOptions{})
	if err != nil {
		fail("verify: %v", err)
	}
	fmt.Printf("%s\n\n", res)
	if res.Outcome == rmtest.Violated {
		fail("requirement does not hold at model level; fix the model first")
	}

	if *rtaFlag && *schemeNo != 1 {
		fmt.Println("== analytic prediction (response-time analysis) ==")
		s2 := platform.DefaultScheme2()
		var interference []platform.InterferenceTask
		if *schemeNo == 3 {
			s3 := platform.DefaultScheme3()
			s2 = &s3.Scheme2
			interference = s3.Interference
		}
		an, err := rmtest.AnalyzePipeline(s2, interference)
		if err != nil {
			fail("rta: %v", err)
		}
		fmt.Print(rmtest.RenderRTA(an.Tasks))
		if an.Bound < 0 {
			fmt.Println("pipeline not schedulable: REQ1 violation predicted")
		} else {
			fmt.Printf("end-to-end m->c bound: %v (REQ1 predicted %s)\n",
				an.Bound, map[bool]string{true: "conformant", false: "violating"}[an.PredictConforms])
		}
		fmt.Println()
	}

	// Phase 1+2: layered R-M testing on the implemented system.
	gen := core.Generator{
		N: *n, Start: 50 * time.Millisecond,
		Spacing:  4500 * time.Millisecond,
		Strategy: core.JitteredSpacing, Jitter: 200 * time.Millisecond,
		Seed: *seed,
	}
	tc, err := gen.Generate(req)
	if err != nil {
		fail("generate: %v", err)
	}
	var rep rmtest.Report
	if *online {
		runner, err := rmtest.NewOnlineRunner(gpca.Factory(mk), req)
		if err != nil {
			fail("runner: %v", err)
		}
		runner.EarlyStop = true
		var stats []rmtest.MonitorStats
		rep, stats, err = runner.RunRM(tc, *forceM)
		if err != nil {
			fail("run: %v", err)
		}
		fmt.Println("== online monitor ==")
		fmt.Print(rmtest.RenderMonitorStats(stats))
		fmt.Println()
	} else {
		runner, err := rmtest.NewRunner(gpca.Factory(mk), req)
		if err != nil {
			fail("runner: %v", err)
		}
		rep, err = runner.RunRM(tc, *forceM)
		if err != nil {
			fail("run: %v", err)
		}
	}
	fmt.Printf("== R-testing (%s) ==\n", rep.R.Scheme)
	for _, s := range rep.R.Samples {
		fmt.Printf("  %s\n", s)
	}
	if rep.R.Passed() {
		fmt.Println("R-testing: PASS — the implemented system conforms to the requirement")
	} else {
		fmt.Printf("R-testing: FAIL — samples %v violate the requirement\n", rep.R.Violations())
	}
	if rep.M == nil {
		return
	}
	fmt.Println("\n== M-testing (delay segments) ==")
	for _, s := range rep.M.Samples {
		if !s.SegmentsOK {
			fmt.Printf("  #%d [%v]: no full m->i->o->c chain\n", s.Index, s.Verdict)
			continue
		}
		fmt.Printf("  #%d [%v]: %s\n", s.Index, s.Verdict, s.Segments)
	}
	if len(rep.Diagnosis) > 0 {
		fmt.Println("\n== diagnosis ==")
		fmt.Print(rmtest.RenderFindings(rep.Diagnosis))
	}
	if *cover {
		fmt.Println("\n== test adequacy (coverage) ==")
		cov := rmtest.MeasureCoverage(*rep.M, 40*time.Millisecond, 8)
		fmt.Print(cov.String())
		if extra := rmtest.SuggestStimuli(cov.Phase, tc.Stimuli[len(tc.Stimuli)-1], 4500*time.Millisecond); len(extra) > 0 {
			fmt.Println("suggested additional stimuli (uncovered phases):")
			for _, at := range extra {
				fmt.Printf("  %v\n", at)
			}
		}
		if hints := rmtest.SuggestScenarios(*rep.M, cov); len(hints) > 0 {
			fmt.Println("suggested scenarios (uncovered transitions):")
			for _, h := range hints {
				fmt.Printf("  %s\n", h)
			}
		}
	}
}

func modelProp(req string) rmtest.ResponseProperty {
	switch req {
	case "REQ2":
		return rmtest.ResponseProperty{
			Name: "REQ2-model", Event: "i_EmptyAlarm", InState: "Idle",
			Output: "o_BuzzerState", Target: func(v int64) bool { return v == 1 },
			TargetDesc: "== 1", WithinTicks: 250,
		}
	case "REQ3":
		return rmtest.ResponseProperty{
			Name: "REQ3-model", Event: "i_ClearAlarm", InState: "EmptyAlarm",
			Output: "o_BuzzerState", Target: func(v int64) bool { return v == 0 },
			TargetDesc: "== 0", WithinTicks: 200,
		}
	default:
		return rmtest.ResponseProperty{
			Name: "REQ1-model", Event: "i_BolusReq", InState: "Idle",
			Output: "o_MotorState", Target: func(v int64) bool { return v >= 1 },
			TargetDesc: ">= 1", WithinTicks: 100,
		}
	}
}

// runGen implements the gen subcommand.
func runGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	budget := fs.Int("budget", 0, "evaluation budget per strategy (0 = strategy defaults)")
	target := fs.Float64("target", 0, "phase-bin adequacy target for the coverage-directed generator (0 = default 0.9)")
	seed := fs.Uint64("seed", 42, "generation seed; the same seed reproduces the same suites")
	workers := fs.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS); suites are identical for any value")
	online := fs.Bool("online", false, "evaluate candidates with the streaming monitor (early termination); suites are identical")
	asCSV := fs.Bool("csv", false, "emit byte-stable CSV instead of the formatted summary")
	progress := fs.Bool("progress", false, "report campaign progress on stderr")
	cacheFlag := fs.Bool("cache", true, "memoise candidate evaluations by content fingerprint; suites are byte-identical either way")
	cacheCap := fs.Int("cache-cap", 0, "evaluation-cache capacity in entries (0 = default 4096)")
	prefixFlag := fs.Bool("prefix-share", false, "evaluate candidate batches through the prefix-sharing snapshot/resume engine; suites are byte-identical either way, stats go to stderr")
	pprofPrefix := fs.String("pprof", "", "write PREFIX.cpu.pprof and PREFIX.heap.pprof profiles of the run")
	fs.Parse(args)

	stopProfiles := startProfiles(*pprofPrefix)
	defer stopProfiles()

	opt := rmtest.GenSuiteOptions{
		Budget: *budget, Seed: *seed, Workers: *workers,
		Online: *online, TargetPhase: *target,
		PrefixShare: *prefixFlag,
	}
	if *prefixFlag {
		opt.PrefixStats = &rmtest.PrefixStatsSink{}
	}
	if *cacheFlag {
		opt.Cache = rmtest.NewEvalCache(*cacheCap)
	}
	if *progress {
		opt.Progress = func(p rmtest.CampaignProgress) {
			fmt.Fprintln(os.Stderr, "rmtest:", p)
		}
	}
	runs, err := rmtest.GenerateSuite(opt)
	if err != nil {
		fail("gen: %v", err)
	}
	if opt.Cache != nil {
		fmt.Fprint(os.Stderr, rmtest.RenderCacheStats(opt.Cache.Stats()))
	}
	if opt.PrefixStats != nil {
		fmt.Fprintf(os.Stderr, "prefix sharing: %s\n", opt.PrefixStats.Stats())
	}
	if *asCSV {
		fmt.Print(rmtest.RenderGenCSV(runs))
		return
	}
	fmt.Println("== generated test suites (coverage / falsification / shrinking) ==")
	fmt.Print(rmtest.RenderGenSummary(runs))
}

// startProfiles begins CPU profiling when prefix is non-empty and
// returns a stop function that finishes the CPU profile and dumps a
// heap profile (after a GC, so it reflects live memory).
func startProfiles(prefix string) func() {
	if prefix == "" {
		return func() {}
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		fail("pprof: %v", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		fail("pprof: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			fail("pprof: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			fail("pprof: %v", err)
		}
		heap.Close()
	}
}

// runLint implements the lint subcommand.
func runLint(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	chartName := fs.String("chart", "gpca", "chart to analyze: gpca, gpca-extended or railcrossing")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	withRTA := fs.Bool("rta", false, "also run response-time analysis from the static WCET bounds (scheme 2)")
	platName := fs.String("platform", "", "also run the platform static analyzer on a scheme configuration: scheme2 or scheme3")
	fs.Parse(args)

	var chart *rmtest.Chart
	switch *chartName {
	case "gpca":
		chart = rmtest.PumpChart()
	case "gpca-extended", "gpca-ext":
		chart = rmtest.PumpExtendedChart()
	case "railcrossing", "crossing":
		chart = rmtest.CrossingChart()
	default:
		fail("unknown chart %q (want gpca, gpca-extended or railcrossing)", *chartName)
	}
	rep, err := rmtest.Lint(chart, rmtest.DefaultCostModel())
	if err != nil {
		fail("lint: %v", err)
	}

	// Platform analysis: the pump pipeline on the named scheme. The
	// platform model is tied to the GPCA board, so it only pairs with the
	// gpca chart.
	var plat *rmtest.PlatformReport
	if *platName != "" {
		if *chartName != "gpca" {
			fail("-platform requires -chart gpca (the pipeline model is the pump's)")
		}
		s2 := rmtest.Scheme2().(*rmtest.Scheme2Config)
		var interference []platform.InterferenceTask
		switch *platName {
		case "scheme2":
		case "scheme3":
			s3 := rmtest.Scheme3().(*rmtest.Scheme3Config)
			s2 = &s3.Scheme2
			interference = s3.Interference
		default:
			fail("unknown platform %q (want scheme2 or scheme3)", *platName)
		}
		an, err := rmtest.AnalyzePipelineStatic(s2, interference)
		if err != nil {
			fail("platform lint: %v", err)
		}
		plat = an.Platform
	}

	if *asJSON {
		var out []byte
		if plat != nil {
			out, err = rmtest.RenderCombinedLintJSON(rep, plat)
		} else {
			out, err = rmtest.RenderLintJSON(rep)
		}
		if err != nil {
			fail("lint: %v", err)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(rmtest.RenderLint(rep))
		if plat != nil {
			fmt.Printf("\n== platform static analysis (%s) ==\n", *platName)
			fmt.Print(rmtest.RenderPlatformLint(plat))
		}
	}
	if *withRTA {
		s2 := rmtest.Scheme2()
		an, err := rmtest.AnalyzePipelineStatic(s2.(*rmtest.Scheme2Config), nil)
		if err != nil {
			fail("rta: %v", err)
		}
		fmt.Println("\n== response-time analysis from static WCETs (scheme 2) ==")
		fmt.Print(rmtest.RenderRTA(an.Tasks))
		if an.Bound >= 0 {
			fmt.Printf("end-to-end m->c bound: %v\n", an.Bound)
		} else {
			fmt.Println("pipeline not schedulable")
		}
	}
	if len(rep.Fatal()) > 0 || (plat != nil && len(plat.Fatal()) > 0) {
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmtest: "+format+"\n", args...)
	os.Exit(1)
}
