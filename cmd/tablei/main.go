// Command tablei regenerates Table I of the paper: R-testing delays and
// M-testing delay segments for the bolus-request scenario of REQ1 on the
// three implementation schemes.
//
// Usage:
//
//	tablei [-n samples] [-seed n] [-force-m] [-csv] [-transitions] [-workers n] [-progress] [-online] [-faults] [-cache] [-prefix-share] [-pprof prefix]
//	tablei -gen [-gen-budget n] [-gen-target ratio] [-seed n] [-workers n] [-online] [-csv] [-progress] [-cache] [-prefix-share] [-pprof prefix]
//
// -cache (on by default) memoises -gen and -faults candidate
// evaluations by content fingerprint; outputs are byte-identical either
// way, and cache statistics go to stderr. -prefix-share evaluates -gen
// and -faults batches through the prefix-sharing snapshot/resume
// engine; outputs are byte-identical either way, and sharing statistics
// go to stderr. -pprof PREFIX writes PREFIX.cpu.pprof and
// PREFIX.heap.pprof profiles of the run, matching the rmtest command's
// flag.
//
// With -faults the command runs the fault-injection sweep instead: the
// Table I scenario once per catalogue fault plan on scheme2, printing
// the fault-attribution table (or CSV with -csv). -workers, -online,
// -seed, -n and -progress compose with it; results are byte-identical
// for any worker count, online or post-hoc.
//
// With -gen the command runs the test-case generation pipeline instead
// of replaying the hand-written Table I suite: the coverage-directed
// generator on scheme2, the falsification search on scheme3, and
// delta-debug shrinking of any violating schedule, on both the GPCA and
// rail-crossing charts. -gen-budget bounds each strategy's evaluations
// and -gen-target sets the phase-bin adequacy threshold; suites are
// byte-identical for any -workers value, with or without -online.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rmtest"
)

func main() {
	n := flag.Int("n", 10, "test samples per scheme")
	seed := flag.Uint64("seed", 42, "stimulus-phase jitter seed")
	forceM := flag.Bool("force-m", true, "run M-testing even for passing schemes")
	csv := flag.Bool("csv", false, "emit CSV instead of the formatted table")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the formatted table")
	trans := flag.Bool("transitions", false, "also print per-transition delays")
	matrix := flag.Bool("matrix", false, "also print the requirement x scheme conformance matrix")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS); results are identical for any value")
	progress := flag.Bool("progress", false, "report campaign progress and throughput on stderr")
	online := flag.Bool("online", false, "evaluate verdicts with the streaming monitor (early termination); output is identical, monitor stats go to stderr")
	faultsFlag := flag.Bool("faults", false, "run the fault-injection sweep and print the fault-attribution table")
	genFlag := flag.Bool("gen", false, "run the test-case generation pipeline (coverage, falsification, shrinking) instead of the hand-written suite")
	genBudget := flag.Int("gen-budget", 0, "evaluation budget per generation strategy (0 = strategy defaults)")
	genTarget := flag.Float64("gen-target", 0, "phase-bin adequacy target for the coverage-directed generator (0 = default 0.9)")
	cacheFlag := flag.Bool("cache", true, "memoise -gen/-faults candidate evaluations by content fingerprint; output is byte-identical either way, stats go to stderr")
	cacheCap := flag.Int("cache-cap", 0, "evaluation-cache capacity in entries (0 = default 4096)")
	prefixFlag := flag.Bool("prefix-share", false, "evaluate -gen/-faults batches through the prefix-sharing snapshot/resume engine; output is byte-identical either way, stats go to stderr")
	pprofPrefix := flag.String("pprof", "", "write PREFIX.cpu.pprof and PREFIX.heap.pprof profiles of the run")
	flag.Parse()

	stopProfiles := startProfiles(*pprofPrefix)
	defer stopProfiles()

	var cache *rmtest.EvalCache
	if *cacheFlag {
		cache = rmtest.NewEvalCache(*cacheCap)
	}
	var sink *rmtest.PrefixStatsSink
	if *prefixFlag {
		sink = &rmtest.PrefixStatsSink{}
	}

	if *genFlag {
		gopt := rmtest.GenSuiteOptions{
			Budget: *genBudget, Seed: *seed, Workers: *workers,
			Online: *online, TargetPhase: *genTarget, Cache: cache,
			PrefixShare: *prefixFlag, PrefixStats: sink,
		}
		if *progress {
			gopt.Progress = func(p rmtest.CampaignProgress) {
				fmt.Fprintln(os.Stderr, "tablei:", p)
			}
		}
		runs, err := rmtest.GenerateSuite(gopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		if cache != nil {
			fmt.Fprint(os.Stderr, rmtest.RenderCacheStats(cache.Stats()))
		}
		if sink != nil {
			fmt.Fprintf(os.Stderr, "prefix sharing: %s\n", sink.Stats())
		}
		if *csv {
			fmt.Print(rmtest.RenderGenCSV(runs))
			return
		}
		fmt.Print(rmtest.RenderGenSummary(runs))
		return
	}

	if *faultsFlag {
		fopt := rmtest.FaultSweepOptions{
			Samples: *n, Seed: *seed, Workers: *workers, Online: *online,
			Cache: cache, PrefixShare: *prefixFlag, PrefixStats: sink,
		}
		if *progress {
			fopt.Progress = func(p rmtest.CampaignProgress) {
				fmt.Fprintln(os.Stderr, "tablei:", p)
			}
		}
		res, err := rmtest.FaultSweep(fopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		if *online {
			fmt.Fprint(os.Stderr, rmtest.RenderMonitorStats(res.Stats))
		}
		if cache != nil {
			fmt.Fprint(os.Stderr, rmtest.RenderCacheStats(cache.Stats()))
		}
		if sink != nil {
			fmt.Fprintf(os.Stderr, "prefix sharing: %s\n", sink.Stats())
		}
		if *csv {
			fmt.Print(rmtest.RenderFaultCSV(res.Attributions))
			return
		}
		fmt.Print(rmtest.RenderFaultTable(res.Attributions))
		return
	}

	opt := rmtest.TableIOptions{
		Samples: *n, Seed: *seed, ForceM: *forceM, Workers: *workers,
	}
	if *progress {
		opt.Progress = func(p rmtest.CampaignProgress) {
			fmt.Fprintln(os.Stderr, "tablei:", p)
		}
	}
	var reports []rmtest.Report
	var err error
	if *online {
		var stats []rmtest.MonitorStats
		reports, stats, err = rmtest.TableIExperimentOnline(opt)
		if err == nil {
			fmt.Fprint(os.Stderr, rmtest.RenderMonitorStats(stats))
		}
	} else {
		reports, err = rmtest.TableIExperiment(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(rmtest.RenderCSV(reports))
		return
	}
	if *jsonOut {
		data, err := rmtest.RenderJSON(reports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(rmtest.RenderTableI(reports))
	if *matrix {
		var cells []rmtest.MatrixCell
		if *online {
			var stats []rmtest.MonitorStats
			cells, stats, err = rmtest.RequirementsMatrixOnline(*n, *seed, *workers)
			if err == nil {
				fmt.Fprint(os.Stderr, rmtest.RenderMonitorStats(stats))
			}
		} else {
			cells, err = rmtest.RequirementsMatrix(*n, *seed, *workers)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		fmt.Println("\nRequirement x scheme conformance (pass/fail/MAX):")
		fmt.Printf("%-8s %-18s %-18s %-18s\n", "", "scheme1", "scheme2", "scheme3")
		byReq := map[string][]rmtest.MatrixCell{}
		var order []string
		for _, c := range cells {
			if _, seen := byReq[c.Requirement]; !seen {
				order = append(order, c.Requirement)
			}
			byReq[c.Requirement] = append(byReq[c.Requirement], c)
		}
		for _, req := range order {
			fmt.Printf("%-8s", req)
			for _, c := range byReq[req] {
				fmt.Printf(" %-18s", fmt.Sprintf("%d/%d/%d", c.Pass, c.Fail, c.Max))
			}
			fmt.Println()
		}
	}
	if *trans {
		for _, rep := range reports {
			if rep.M != nil {
				fmt.Println()
				fmt.Print(rmtest.RenderTransitions(*rep.M, false))
			}
		}
	}
	for _, rep := range reports {
		if len(rep.Diagnosis) > 0 {
			fmt.Printf("\nDiagnosis (%s):\n%s", rep.R.Scheme, rmtest.RenderFindings(rep.Diagnosis))
		}
	}
}

// startProfiles begins CPU profiling when prefix is non-empty and
// returns a stop function that finishes the CPU profile and dumps a
// heap profile (after a GC, so it reflects live memory). It matches the
// rmtest command's -pprof semantics.
func startProfiles(prefix string) func() {
	if prefix == "" {
		return func() {}
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			fmt.Fprintln(os.Stderr, "tablei:", err)
			os.Exit(1)
		}
		heap.Close()
	}
}
