// Command pumpsim runs the GPCA infusion pump on a chosen implementation
// scheme, presses the bolus button, and dumps the four-variable trace and
// the Fig. 3 timing diagram of the first bolus chain.
//
// Usage:
//
//	pumpsim [-scheme 1|2|3] [-press ms] [-width ms] [-run ms] [-trace] [-sched]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rmtest"
	"rmtest/internal/fourvar"
	"rmtest/internal/gpca"
)

func main() {
	schemeNo := flag.Int("scheme", 1, "implementation scheme (1, 2 or 3)")
	press := flag.Int("press", 40, "bolus button press instant (ms)")
	width := flag.Int("width", 60, "press width (ms)")
	runFor := flag.Int("run", 6000, "simulation horizon (ms)")
	dumpTrace := flag.Bool("trace", false, "dump the full four-variable trace")
	dumpSched := flag.Bool("sched", false, "dump the scheduler trace (tail)")
	gantt := flag.Bool("gantt", false, "render a CPU Gantt chart around the press")
	vcd := flag.String("vcd", "", "write the four-variable trace as a VCD waveform to this file")
	flag.Parse()

	var scheme rmtest.Scheme
	switch *schemeNo {
	case 1:
		scheme = rmtest.Scheme1()
	case 2:
		scheme = rmtest.Scheme2()
	case 3:
		scheme = rmtest.Scheme3()
	default:
		fmt.Fprintln(os.Stderr, "pumpsim: scheme must be 1, 2 or 3")
		os.Exit(1)
	}
	sys, err := rmtest.NewSystem(rmtest.PumpConfig(), scheme, rmtest.MLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pumpsim:", err)
		os.Exit(1)
	}
	defer sys.Shutdown()

	at := time.Duration(*press) * time.Millisecond
	sys.Env.PulseAt(at, gpca.SigBolusButton, 1, 0, time.Duration(*width)*time.Millisecond)
	sys.Run(time.Duration(*runFor) * time.Millisecond)

	fmt.Printf("pump on %s: ran %v, motor=%d, CPU utilisation %.1f%%, %d context switches, %d preemptions\n",
		sys.SchemeName(), sys.Kernel.Now(), sys.Env.Get(gpca.SigPumpMotor),
		100*sys.Sched.Utilization(), sys.Sched.ContextSwitches(), sys.Sched.Preemptions())

	spec := fourvar.MatchSpec{
		MName: gpca.SigBolusButton, MPred: func(v int64) bool { return v == 1 },
		IName: "i_BolusReq",
		OName: "o_MotorState", OPred: func(v int64) bool { return v >= 1 },
		CName: gpca.SigPumpMotor,
	}
	if seg, ok := fourvar.Match(sys.Trace, sys.TransTrace, spec, 0); ok {
		fmt.Println()
		fmt.Print(rmtest.RenderDiagram(seg, 72))
	} else {
		fmt.Println("bolus chain not completed (MAX): the press was lost or the response starved")
	}
	if *gantt {
		from := at - 10*time.Millisecond
		if from < 0 {
			from = 0
		}
		fmt.Println()
		fmt.Print(rmtest.RenderGantt(sys.Sched.Trace(), from, at+150*time.Millisecond, 90))
	}
	fmt.Println()
	fmt.Print(rmtest.RenderTaskLoads(sys.Sched))
	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pumpsim:", err)
			os.Exit(1)
		}
		if err := rmtest.WriteVCD(f, sys.Trace, "pumpsim "+sys.SchemeName()); err != nil {
			fmt.Fprintln(os.Stderr, "pumpsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote waveform to %s\n", *vcd)
	}
	if *dumpTrace {
		fmt.Println("\nfour-variable trace:")
		fmt.Print(sys.Trace.String())
	}
	if *dumpSched {
		fmt.Println("\nscheduler trace (retained tail):")
		fmt.Print(sys.Sched.Trace().String())
	}
}
