// Command chartgen demonstrates the code-generation stage: it compiles
// the GPCA pump chart (or the extended chart) and emits the generated
// artifacts — the transition-table/bytecode disassembly and readable Go
// source, mirroring what RealTimeWorkshop hands to the platform
// integrator.
//
// Usage:
//
//	chartgen [-chart pump|ext] [-go] [-helpers]
package main

import (
	"flag"
	"fmt"
	"os"

	"rmtest"
	"rmtest/internal/codegen"
)

func main() {
	which := flag.String("chart", "pump", "chart to generate: pump or ext")
	emitGo := flag.Bool("go", false, "emit generated Go source instead of the disassembly")
	helpers := flag.Bool("helpers", false, "also emit the runtime helper functions")
	dot := flag.Bool("dot", false, "emit a Graphviz rendering of the chart")
	flag.Parse()

	var chart *rmtest.Chart
	switch *which {
	case "pump":
		chart = rmtest.PumpChart()
	case "ext":
		chart = rmtest.PumpExtendedChart()
	default:
		fmt.Fprintln(os.Stderr, "chartgen: -chart must be pump or ext")
		os.Exit(1)
	}
	if *dot {
		cc, err := chart.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, "chartgen:", err)
			os.Exit(1)
		}
		fmt.Print(cc.DOT())
		return
	}
	if *emitGo {
		if err := rmtest.EmitGo(os.Stdout, chart, "pumpgen"); err != nil {
			fmt.Fprintln(os.Stderr, "chartgen:", err)
			os.Exit(1)
		}
		if *helpers {
			fmt.Println()
			fmt.Print(codegen.RuntimeHelpers())
		}
		return
	}
	prog, err := rmtest.Generate(chart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chartgen:", err)
		os.Exit(1)
	}
	fmt.Print(prog.Disassemble())
}
